#include "sim/perf_monitor.hpp"

#include <cmath>
#include <string>

namespace drlhmd::sim {

PerfMonitor::PerfMonitor(Core& core, const PerfMonitorConfig& config)
    : core_(core),
      config_(config),
      last_snapshot_(core.counts()),
      noise_rng_(config.noise_seed) {}

void PerfMonitor::warm_up() {
  core_.run_cycles(config_.warmup_cycles);
  last_snapshot_ = core_.counts();
}

HpcSample PerfMonitor::sample_window() {
  core_.run_cycles(config_.window_cycles);
  const EventCounts now = core_.counts();
  const EventCounts delta = now.delta_since(last_snapshot_);
  last_snapshot_ = now;

  HpcSample s;
  s.values.reserve(kNumHpcEvents);
  for (std::uint64_t v : delta.raw()) s.values.push_back(static_cast<double>(v));

  // Event-multiplexing estimation noise: each event is only observed for a
  // slice of the window and extrapolated, so its estimate carries relative
  // error growing with the number of multiplex groups.
  if (config_.pmu_counters > 0 && config_.pmu_counters < kNumHpcEvents) {
    const double groups = std::ceil(static_cast<double>(kNumHpcEvents) /
                                    static_cast<double>(config_.pmu_counters));
    const double sigma = config_.multiplex_noise * std::sqrt(groups - 1.0);
    for (double& v : s.values) {
      const double factor = std::max(0.0, noise_rng_.normal(1.0, sigma));
      v *= factor;
    }
  }
  return s;
}

std::vector<HpcSample> PerfMonitor::collect(std::size_t n) {
  std::vector<HpcSample> samples;
  samples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) samples.push_back(sample_window());
  return samples;
}

std::vector<std::string> PerfMonitor::feature_names() {
  std::vector<std::string> names;
  names.reserve(kNumHpcEvents);
  for (std::size_t i = 0; i < kNumHpcEvents; ++i)
    names.emplace_back(event_name(static_cast<HpcEvent>(i)));
  return names;
}

}  // namespace drlhmd::sim
