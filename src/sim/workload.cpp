#include "sim/workload.hpp"

#include <algorithm>
#include <stdexcept>

namespace drlhmd::sim {

void WorkloadSpec::validate() const {
  if (phases.empty()) throw std::invalid_argument(name + ": workload has no phases");
  if (code_footprint_bytes == 0)
    throw std::invalid_argument(name + ": zero code footprint");
  for (const auto& p : phases) {
    const double mem = p.load_frac + p.store_frac + p.branch_frac;
    if (p.load_frac < 0 || p.store_frac < 0 || p.branch_frac < 0 || mem > 1.0)
      throw std::invalid_argument(name + "/" + p.name + ": op fractions out of range");
    if (p.sequential_frac < 0 || p.sequential_frac > 1)
      throw std::invalid_argument(name + "/" + p.name + ": sequential_frac out of [0,1]");
    if (p.hot_frac < 0 || p.hot_frac > 1)
      throw std::invalid_argument(name + "/" + p.name + ": hot_frac out of [0,1]");
    if (p.taken_bias < 0 || p.taken_bias > 1)
      throw std::invalid_argument(name + "/" + p.name + ": taken_bias out of [0,1]");
    if (p.branch_entropy < 0 || p.branch_entropy > 1)
      throw std::invalid_argument(name + "/" + p.name + ": branch_entropy out of [0,1]");
    if (p.weight <= 0) throw std::invalid_argument(name + "/" + p.name + ": weight <= 0");
    if (p.mean_ops == 0) throw std::invalid_argument(name + "/" + p.name + ": mean_ops == 0");
    if (p.working_set_bytes == 0 || p.stream_bytes == 0)
      throw std::invalid_argument(name + "/" + p.name + ": zero memory region");
    if (p.branch_sites == 0)
      throw std::invalid_argument(name + "/" + p.name + ": zero branch sites");
  }
}

Workload::Workload(WorkloadSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)), rng_(seed) {
  spec_.validate();
  phase_states_.resize(spec_.phases.size());
  phase_weights_.reserve(spec_.phases.size());
  for (std::size_t i = 0; i < spec_.phases.size(); ++i) {
    const PhaseSpec& p = spec_.phases[i];
    phase_weights_.push_back(p.weight);
    auto& st = phase_states_[i];
    st.site_taken_prob.resize(p.branch_sites);
    for (auto& prob : st.site_taken_prob) {
      if (rng_.bernoulli(p.branch_entropy)) {
        // High-entropy site: outcome close to a coin flip.
        prob = rng_.uniform(0.35, 0.65);
      } else {
        // Predictable site: strongly biased toward the phase's direction,
        // with per-site jitter so sites are not identical.
        const double strong = p.taken_bias >= 0.5 ? rng_.uniform(0.9, 1.0)
                                                  : rng_.uniform(0.0, 0.1);
        prob = strong;
      }
    }
    st.chase_cursor = kHeapBase + rng_.next_below(std::max<std::uint64_t>(p.working_set_bytes, 8));
  }
  enter_phase(rng_.categorical(phase_weights_));
}

void Workload::enter_phase(std::size_t index) {
  phase_index_ = index;
  const auto mean = static_cast<double>(spec_.phases[index].mean_ops);
  // Geometric length with the requested mean, floor of 1.
  ops_left_in_phase_ = 1 + rng_.geometric(std::min(1.0, 1.0 / mean));
}

std::uint64_t Workload::gen_data_address(const PhaseSpec& phase, PhaseState& st,
                                         bool sequential) {
  if (sequential) {
    st.stream_cursor = (st.stream_cursor + phase.stride_bytes) % phase.stream_bytes;
    return kStreamBase + st.stream_cursor;
  }
  if (phase.hot_frac > 0.0 && rng_.bernoulli(phase.hot_frac)) {
    return kHotBase + rng_.next_below(std::max<std::uint64_t>(phase.hot_bytes, 8));
  }
  if (phase.pointer_chase) {
    // Dependent chain: next address derived from the current one, random
    // within the working set (models linked-structure traversal).
    const std::uint64_t ws = std::max<std::uint64_t>(phase.working_set_bytes, 64);
    const std::uint64_t mix = st.chase_cursor * 0x9E3779B97F4A7C15ull + rng_.next();
    st.chase_cursor = kHeapBase + (mix % ws);
    return st.chase_cursor & ~0x7ull;
  }
  return kHeapBase + rng_.next_below(std::max<std::uint64_t>(phase.working_set_bytes, 8));
}

MicroOp Workload::next() {
  if (ops_left_in_phase_ == 0) {
    enter_phase(rng_.categorical(phase_weights_));
  }
  --ops_left_in_phase_;

  const PhaseSpec& phase = spec_.phases[phase_index_];
  PhaseState& st = phase_states_[phase_index_];

  MicroOp op;
  const double roll = rng_.uniform();
  if (roll < phase.load_frac) {
    op.kind = OpKind::kLoad;
    op.addr = gen_data_address(phase, st, rng_.bernoulli(phase.sequential_frac));
  } else if (roll < phase.load_frac + phase.store_frac) {
    op.kind = OpKind::kStore;
    op.addr = gen_data_address(phase, st, rng_.bernoulli(phase.sequential_frac));
  } else if (roll < phase.load_frac + phase.store_frac + phase.branch_frac) {
    op.kind = OpKind::kBranch;
    op.branch_site = static_cast<std::uint32_t>(rng_.next_below(phase.branch_sites));
    op.taken = rng_.bernoulli(st.site_taken_prob[op.branch_site]);
    const std::int64_t span = std::max<std::int32_t>(phase.jump_span_bytes, 8);
    op.jump_bytes = static_cast<std::int32_t>(rng_.uniform_int(-span, span));
  } else {
    op.kind = OpKind::kAlu;
  }
  return op;
}

}  // namespace drlhmd::sim
