#include "sim/machine_profile.hpp"

#include <stdexcept>

namespace drlhmd::sim {
namespace {

// Each profile starts from the nominal testbed config and perturbs the
// knobs a real fleet varies: cache capacity/associativity, replacement
// policy, prefetcher, TLB reach, memory latency, branch predictor, and
// miss-overlap capability.  The nominal testbed itself is profile 0, so a
// single-profile fleet reproduces build_corpus exactly.
std::vector<MachineProfile> build_registry() {
  std::vector<MachineProfile> out;

  {
    MachineProfile p;
    p.id = "testbed-i7";
    p.description = "nominal 11th-gen testbed (scaled geometry, no prefetch)";
    out.push_back(std::move(p));
  }
  {
    MachineProfile p;
    p.id = "desktop-stride";
    p.description = "desktop part: stride prefetcher, bigger L2, faster DRAM";
    p.hierarchy.l2.size_bytes = 256 * 1024;
    p.hierarchy.prefetch = HierarchyConfig::Prefetch::kStride;
    p.hierarchy.prefetch_degree = 4;
    p.hierarchy.mem_latency = 190;
    out.push_back(std::move(p));
  }
  {
    MachineProfile p;
    p.id = "server-srrip";
    p.description = "server part: large SRRIP LLC, wide dTLB, deep MLP";
    p.hierarchy.llc.size_bytes = 2 * 1024 * 1024;
    p.hierarchy.llc.policy = ReplacementPolicy::kSrrip;
    p.hierarchy.dtlb.entries = 128;
    p.hierarchy.mem_latency = 260;  // further DRAM, NUMA-ish
    p.core.memory_parallelism = 6.0;
    out.push_back(std::move(p));
  }
  {
    MachineProfile p;
    p.id = "embedded-small";
    p.description = "embedded part: halved caches, bimodal predictor, blocking-ish core";
    p.hierarchy.l1i.size_bytes = 8 * 1024;
    p.hierarchy.l1d.size_bytes = 8 * 1024;
    p.hierarchy.l1i.associativity = 4;
    p.hierarchy.l1d.associativity = 4;
    p.hierarchy.l2.size_bytes = 64 * 1024;
    p.hierarchy.llc.size_bytes = 512 * 1024;
    p.hierarchy.llc.associativity = 8;
    p.hierarchy.dtlb.entries = 32;
    p.hierarchy.itlb.entries = 64;
    p.core.predictor = PredictorKind::kBimodal;
    p.core.mispredict_penalty = 10;
    p.core.memory_parallelism = 1.5;
    out.push_back(std::move(p));
  }
  {
    MachineProfile p;
    p.id = "laptop-nextline";
    p.description = "laptop part: next-line prefetch, slower uncore, noisier OS";
    p.hierarchy.prefetch = HierarchyConfig::Prefetch::kNextLine;
    p.hierarchy.prefetch_degree = 2;
    p.hierarchy.l2_latency = 16;
    p.hierarchy.llc_latency = 50;
    p.core.page_fault_prob = 1e-3;
    p.core.context_switch_period = 1'000'000;
    out.push_back(std::move(p));
  }
  {
    MachineProfile p;
    p.id = "legacy-node";
    p.description = "older node: small SRRIP L2, slow memory, costly mispredicts";
    p.hierarchy.l2.size_bytes = 64 * 1024;
    p.hierarchy.l2.policy = ReplacementPolicy::kSrrip;
    p.hierarchy.mem_latency = 300;
    p.hierarchy.tlb_miss_penalty = 45;
    p.core.mispredict_penalty = 20;
    p.core.memory_parallelism = 2.0;
    out.push_back(std::move(p));
  }

  return out;
}

}  // namespace

const std::vector<MachineProfile>& machine_profiles() {
  static const std::vector<MachineProfile> registry = build_registry();
  return registry;
}

const MachineProfile& machine_profile(const std::string& id) {
  for (const MachineProfile& p : machine_profiles())
    if (p.id == id) return p;
  std::string known;
  for (const MachineProfile& p : machine_profiles()) {
    if (!known.empty()) known += ", ";
    known += p.id;
  }
  throw std::invalid_argument("machine_profile: unknown id '" + id +
                              "' (known: " + known + ")");
}

}  // namespace drlhmd::sim
