#include "sim/corpus_shard.hpp"

#include <chrono>
#include <filesystem>
#include <stdexcept>

#include "ml/sharded_dataset.hpp"
#include "util/artifact_store.hpp"
#include "util/parallel.hpp"
#include "util/serialize.hpp"

namespace drlhmd::sim {
namespace {

constexpr const char* kManifestName = "manifest";
constexpr const char* kManifestKind = "drlhmd.sim.fleet-manifest";
constexpr const char* kMarkerKind = "drlhmd.sim.shard-marker";
constexpr std::uint32_t kStateVersion = 1;

std::string marker_name(std::size_t shard) {
  return "shard-" + std::to_string(shard);
}

/// Everything a shard's bytes depend on besides the shard index.  Resuming
/// against a directory built with a different fingerprint would silently
/// mix incompatible rows, so the store pins it and we compare bytes.
std::vector<std::uint8_t> fleet_fingerprint(
    const CorpusConfig& config, const FleetConfig& fleet,
    const std::vector<std::string>& profile_ids) {
  util::ByteWriter w;
  w.write_u64(config.seed);
  w.write_u64(config.benign_apps);
  w.write_u64(config.malware_apps);
  w.write_u64(config.windows_per_app);
  w.write_u64(fleet.shards);
  w.write_u64(profile_ids.size());
  for (const auto& id : profile_ids) w.write_string(id);
  return w.take();
}

/// Simulate shard `s`: the same plan/execute structure as build_corpus, but
/// over the shard's slice of the global application population, on the
/// shard's machine profile, drawing from the shard's own rng stream.
ml::Dataset build_shard(const CorpusConfig& config, const FleetConfig& fleet,
                        const MachineProfile& machine, std::size_t s,
                        std::vector<std::string>& feature_names) {
  util::Rng rng = util::chunk_rng(config.seed, s);
  feature_names = PerfMonitor::feature_names();

  const auto benign = benign_families();
  const auto malware = malware_families();

  std::size_t benign_start = 0, malware_start = 0;
  for (std::size_t i = 0; i < s; ++i) {
    benign_start += shard_app_count(config.benign_apps, fleet.shards, i);
    malware_start += shard_app_count(config.malware_apps, fleet.shards, i);
  }
  const std::size_t benign_count =
      shard_app_count(config.benign_apps, fleet.shards, s);
  const std::size_t malware_count =
      shard_app_count(config.malware_apps, fleet.shards, s);

  // Serial pre-pass, mirroring build_corpus: specs and seeds come off the
  // shard rng in a fixed order, so the shard is thread-count independent.
  // App ids are global, so a family's id-conditioned variation spans the
  // whole fleet population, not one shard.
  struct AppPlan {
    WorkloadSpec spec;
    std::uint64_t workload_seed = 0;
    std::uint64_t core_seed = 0;
  };
  std::vector<AppPlan> plans;
  plans.reserve(benign_count + malware_count);
  auto plan_app = [&](ProgramFamily family, std::size_t app_id) {
    AppPlan plan;
    plan.spec = make_application(family, static_cast<std::uint32_t>(app_id), rng);
    plan.workload_seed = rng.next();
    plan.core_seed = rng.next();
    plans.push_back(std::move(plan));
  };
  for (std::size_t i = benign_start; i < benign_start + benign_count; ++i)
    plan_app(benign[i % benign.size()], i);
  for (std::size_t i = malware_start; i < malware_start + malware_count; ++i)
    plan_app(malware[i % malware.size()], i);

  // Simulate the shard's applications in parallel on the shard's machine;
  // fresh cold hierarchy per application, exactly as build_corpus does.
  const std::size_t windows = config.windows_per_app;
  std::vector<std::vector<HpcRecord>> blocks = util::parallel_map(
      "corpus_shard.apps", 0, plans.size(), 1, [&](std::size_t a) {
        const AppPlan& plan = plans[a];
        Core core(machine.core, machine.hierarchy,
                  Workload(plan.spec, plan.workload_seed), plan.core_seed);
        PerfMonitor monitor(core, config.monitor);
        monitor.warm_up();
        std::vector<HpcRecord> records;
        records.reserve(windows);
        for (std::size_t w = 0; w < windows; ++w) {
          HpcRecord rec;
          rec.app = plan.spec.name;
          rec.family = plan.spec.family;
          rec.malware = plan.spec.malware;
          rec.features = monitor.sample_window().values;
          records.push_back(std::move(rec));
        }
        return records;
      });

  HpcCorpus corpus;
  corpus.feature_names = feature_names;
  corpus.records.reserve(plans.size() * windows);
  for (auto& block : blocks)
    for (auto& rec : block) corpus.records.push_back(std::move(rec));
  return corpus_to_dataset(corpus);
}

}  // namespace

std::size_t shard_app_count(std::size_t total, std::size_t shards,
                            std::size_t s) {
  return total / shards + (s < total % shards ? 1 : 0);
}

ShardBuildStats build_corpus_sharded(const CorpusConfig& config,
                                     const FleetConfig& fleet) {
  if (config.windows_per_app == 0)
    throw std::invalid_argument("build_corpus_sharded: windows_per_app must be > 0");
  if (fleet.shards == 0)
    throw std::invalid_argument("build_corpus_sharded: shards must be > 0");
  if (fleet.out_dir.empty())
    throw std::invalid_argument("build_corpus_sharded: out_dir must be set");

  std::vector<std::string> profile_ids = fleet.profiles;
  if (profile_ids.empty())
    for (const MachineProfile& p : machine_profiles()) profile_ids.push_back(p.id);
  for (const auto& id : profile_ids) machine_profile(id);  // validate early

  const auto t0 = std::chrono::steady_clock::now();
  std::filesystem::create_directories(fleet.out_dir);
  const util::ArtifactStore state(
      (std::filesystem::path(fleet.out_dir) / "state").string());

  const std::vector<std::uint8_t> fingerprint =
      fleet_fingerprint(config, fleet, profile_ids);
  if (state.contains(kManifestName)) {
    const util::Artifact existing = state.get(kManifestName);
    if (existing.kind != kManifestKind ||
        existing.version != kStateVersion ||
        existing.payload != fingerprint)
      throw std::runtime_error(
          "build_corpus_sharded: '" + fleet.out_dir +
          "' holds shards built with different parameters; remove the "
          "directory (or point out_dir elsewhere) to rebuild");
  } else {
    state.put(kManifestName, kManifestKind, kStateVersion, fingerprint);
  }

  // Survey what already survived a previous (possibly interrupted) run.
  std::map<std::size_t, bool> valid_on_disk;
  for (const ml::ShardInfo& info : ml::ShardedDataset::inspect(fleet.out_dir))
    valid_on_disk[info.index] = info.crc_ok;

  ShardBuildStats stats;
  stats.shards_total = fleet.shards;
  for (std::size_t s = 0; s < fleet.shards; ++s) {
    const bool checkpointed = state.contains(marker_name(s));
    const auto it = valid_on_disk.find(s);
    if (checkpointed && it != valid_on_disk.end() && it->second) {
      ++stats.shards_resumed;
      continue;
    }
    if (fleet.limit_shards != 0 && stats.shards_built >= fleet.limit_shards)
      continue;  // simulated interrupt: leave the remaining shards unbuilt

    const MachineProfile& machine =
        machine_profile(profile_ids[s % profile_ids.size()]);
    std::vector<std::string> feature_names;
    const ml::Dataset data = build_shard(config, fleet, machine, s, feature_names);
    const std::string path =
        (std::filesystem::path(fleet.out_dir) / ml::shard_file_name(s)).string();
    ml::write_shard(path, static_cast<std::uint32_t>(s), machine.id,
                    feature_names, data.X, data.y);

    util::ByteWriter marker;
    marker.write_u64(data.size());
    marker.write_string(machine.id);
    state.put(marker_name(s), kMarkerKind, kStateVersion, marker.take());
    ++stats.shards_built;
  }

  // Final accounting from what is actually on disk now.
  for (const ml::ShardInfo& info : ml::ShardedDataset::inspect(fleet.out_dir)) {
    if (!info.crc_ok) continue;
    stats.rows += info.rows;
    stats.rows_per_profile[info.profile_id] += info.rows;
  }
  stats.complete = stats.shards_resumed + stats.shards_built == fleet.shards;
  stats.build_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return stats;
}

}  // namespace drlhmd::sim
