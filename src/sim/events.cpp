#include "sim/events.hpp"

#include <stdexcept>
#include <string>

namespace drlhmd::sim {
namespace {

constexpr std::array<std::string_view, kNumHpcEvents> kEventNames = {
    "cycles",
    "instructions",
    "ref-cycles",
    "bus-cycles",
    "stalled-cycles-frontend",
    "stalled-cycles-backend",
    "cache-references",
    "cache-misses",
    "LLC-loads",
    "LLC-load-misses",
    "LLC-stores",
    "LLC-store-misses",
    "L1-dcache-loads",
    "L1-dcache-load-misses",
    "L1-dcache-stores",
    "L1-dcache-store-misses",
    "L1-icache-loads",
    "L1-icache-load-misses",
    "L2-accesses",
    "L2-misses",
    "dTLB-loads",
    "dTLB-load-misses",
    "dTLB-stores",
    "dTLB-store-misses",
    "iTLB-loads",
    "iTLB-load-misses",
    "branches",
    "branch-misses",
    "branch-loads",
    "branch-load-misses",
    "mem-loads",
    "mem-stores",
    "alu-ops",
    "page-faults",
    "context-switches",
    "LLC-prefetches",
    "LLC-prefetch-misses",
};

}  // namespace

std::string_view event_name(HpcEvent e) {
  const auto idx = static_cast<std::size_t>(e);
  if (idx >= kNumHpcEvents) throw std::out_of_range("event_name: bad event");
  return kEventNames[idx];
}

HpcEvent event_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kNumHpcEvents; ++i)
    if (kEventNames[i] == name) return static_cast<HpcEvent>(i);
  throw std::out_of_range("event_from_name: unknown event '" + std::string(name) + "'");
}

EventCounts EventCounts::delta_since(const EventCounts& earlier) const {
  EventCounts d;
  for (std::size_t i = 0; i < kNumHpcEvents; ++i)
    d.counts_[i] = counts_[i] - earlier.counts_[i];
  return d;
}

}  // namespace drlhmd::sim
