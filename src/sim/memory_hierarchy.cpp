#include "sim/memory_hierarchy.hpp"

namespace drlhmd::sim {
namespace {

std::unique_ptr<Prefetcher> make_prefetcher(const HierarchyConfig& config) {
  switch (config.prefetch) {
    case HierarchyConfig::Prefetch::kNone:
      return nullptr;
    case HierarchyConfig::Prefetch::kNextLine:
      return std::make_unique<NextLinePrefetcher>(config.l2.line_bytes,
                                                  config.prefetch_degree);
    case HierarchyConfig::Prefetch::kStride:
      return std::make_unique<StridePrefetcher>(64, config.prefetch_degree,
                                                config.l2.line_bytes);
  }
  return nullptr;
}

}  // namespace

MemoryHierarchy::MemoryHierarchy(const HierarchyConfig& config)
    : config_(config),
      l1i_(config.l1i),
      l1d_(config.l1d),
      l2_(config.l2),
      llc_(config.llc),
      dtlb_(config.dtlb),
      itlb_(config.itlb),
      prefetcher_(make_prefetcher(config)) {}

void MemoryHierarchy::issue_prefetches(std::uint64_t addr, EventCounts& counts) {
  if (!prefetcher_) return;
  // Asynchronous fills: install into L2 + LLC without charging the demand
  // access; account prefetch traffic on its own counters.
  for (const std::uint64_t pf : prefetcher_->observe(addr)) {
    if (l2_.contains(pf)) continue;
    l2_.access(pf);
    counts.increment(HpcEvent::kLlcPrefetches);
    if (!llc_.access(pf)) counts.increment(HpcEvent::kLlcPrefetchMisses);
  }
}

std::uint32_t MemoryHierarchy::access_data(std::uint64_t addr, bool is_store,
                                           EventCounts& counts) {
  std::uint32_t latency = config_.l1_latency;

  // TLB first.
  const bool tlb_hit = dtlb_.access(addr);
  counts.increment(is_store ? HpcEvent::kDtlbStores : HpcEvent::kDtlbLoads);
  if (!tlb_hit) {
    counts.increment(is_store ? HpcEvent::kDtlbStoreMisses : HpcEvent::kDtlbLoadMisses);
    latency += config_.tlb_miss_penalty;
  }

  counts.increment(is_store ? HpcEvent::kMemStores : HpcEvent::kMemLoads);
  counts.increment(is_store ? HpcEvent::kL1DcacheStores : HpcEvent::kL1DcacheLoads);
  if (l1d_.access(addr)) return latency;
  counts.increment(is_store ? HpcEvent::kL1DcacheStoreMisses
                            : HpcEvent::kL1DcacheLoadMisses);
  issue_prefetches(addr, counts);  // L1-miss-triggered, L2-side prefetcher

  counts.increment(HpcEvent::kL2Accesses);
  latency = config_.l2_latency + (tlb_hit ? 0 : config_.tlb_miss_penalty);
  if (l2_.access(addr)) return latency;
  counts.increment(HpcEvent::kL2Misses);

  // LLC level: `perf`'s cache-references / cache-misses count here, as do the
  // LLC-load/store events the paper's top feature set is built from.
  counts.increment(HpcEvent::kCacheReferences);
  counts.increment(is_store ? HpcEvent::kLlcStores : HpcEvent::kLlcLoads);
  latency = config_.llc_latency + (tlb_hit ? 0 : config_.tlb_miss_penalty);
  if (llc_.access(addr)) return latency;
  counts.increment(HpcEvent::kCacheMisses);
  counts.increment(is_store ? HpcEvent::kLlcStoreMisses : HpcEvent::kLlcLoadMisses);
  return config_.mem_latency + (tlb_hit ? 0 : config_.tlb_miss_penalty);
}

std::uint32_t MemoryHierarchy::access_instruction(std::uint64_t pc, EventCounts& counts) {
  std::uint32_t latency = 0;  // L1I hits are hidden by the fetch pipeline

  counts.increment(HpcEvent::kItlbLoads);
  if (!itlb_.access(pc)) {
    counts.increment(HpcEvent::kItlbLoadMisses);
    latency += config_.tlb_miss_penalty;
  }

  counts.increment(HpcEvent::kL1IcacheLoads);
  if (l1i_.access(pc)) return latency;
  counts.increment(HpcEvent::kL1IcacheLoadMisses);

  counts.increment(HpcEvent::kL2Accesses);
  latency += config_.l2_latency;
  if (l2_.access(pc)) return latency;
  counts.increment(HpcEvent::kL2Misses);

  counts.increment(HpcEvent::kCacheReferences);
  counts.increment(HpcEvent::kLlcLoads);
  latency += config_.llc_latency;
  if (llc_.access(pc)) return latency;
  counts.increment(HpcEvent::kCacheMisses);
  counts.increment(HpcEvent::kLlcLoadMisses);
  return latency + config_.mem_latency;
}

void MemoryHierarchy::flush_all() {
  l1i_.flush();
  l1d_.flush();
  l2_.flush();
  llc_.flush();
  dtlb_.flush();
  itlb_.flush();
}

}  // namespace drlhmd::sim
