// Hardware-performance-counter event catalogue.
//
// Mirrors the perf-style event list the paper collects ("+30 events" at a
// 10 ms sampling period).  Every counter the timing core and the memory
// hierarchy can increment is enumerated here; an HPC sample is the vector of
// per-window deltas of these counters.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

namespace drlhmd::sim {

/// Countable microarchitectural events.  Names follow `perf list` notation.
enum class HpcEvent : std::uint8_t {
  kCycles = 0,
  kInstructions,
  kRefCycles,
  kBusCycles,
  kStalledCyclesFrontend,
  kStalledCyclesBackend,

  kCacheReferences,   // LLC accesses, perf semantics
  kCacheMisses,       // LLC misses, perf semantics
  kLlcLoads,
  kLlcLoadMisses,
  kLlcStores,
  kLlcStoreMisses,

  kL1DcacheLoads,
  kL1DcacheLoadMisses,
  kL1DcacheStores,
  kL1DcacheStoreMisses,
  kL1IcacheLoads,
  kL1IcacheLoadMisses,

  kL2Accesses,
  kL2Misses,

  kDtlbLoads,
  kDtlbLoadMisses,
  kDtlbStores,
  kDtlbStoreMisses,
  kItlbLoads,
  kItlbLoadMisses,

  kBranches,
  kBranchMisses,
  kBranchLoads,       // alias counter kept distinct, as perf reports it
  kBranchLoadMisses,

  kMemLoads,
  kMemStores,
  kAluOps,
  kPageFaults,
  kContextSwitches,

  kLlcPrefetches,      // prefetch fills reaching the LLC level
  kLlcPrefetchMisses,  // prefetch fills that went to memory

  kCount  // sentinel
};

inline constexpr std::size_t kNumHpcEvents = static_cast<std::size_t>(HpcEvent::kCount);

/// perf-style spelling for each event, indexable by the enum value.
std::string_view event_name(HpcEvent e);

/// Inverse of event_name; throws std::out_of_range for unknown names.
HpcEvent event_from_name(std::string_view name);

/// Fixed-size counter file: one 64-bit counter per event.
class EventCounts {
 public:
  void increment(HpcEvent e, std::uint64_t by = 1) {
    counts_[static_cast<std::size_t>(e)] += by;
  }
  std::uint64_t operator[](HpcEvent e) const {
    return counts_[static_cast<std::size_t>(e)];
  }
  std::span<const std::uint64_t> raw() const { return counts_; }

  /// Per-window delta (this - earlier); caller guarantees monotonicity.
  EventCounts delta_since(const EventCounts& earlier) const;

  void reset() { counts_.fill(0); }

 private:
  std::array<std::uint64_t, kNumHpcEvents> counts_{};
};

}  // namespace drlhmd::sim
