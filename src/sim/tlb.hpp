// Translation lookaside buffer model (set-associative over page numbers).
#pragma once

#include <cstdint>
#include <string>

#include "sim/cache.hpp"

namespace drlhmd::sim {

struct TlbConfig {
  std::string name = "tlb";
  std::uint32_t entries = 64;
  std::uint32_t associativity = 4;
  std::uint32_t page_bytes = 4096;
};

/// A TLB is structurally a tag cache over page numbers; we reuse the Cache
/// machinery with one "line" per page.
class Tlb {
 public:
  explicit Tlb(const TlbConfig& config);

  /// Translate the address' page; returns true on TLB hit.
  bool access(std::uint64_t addr) { return cache_.access(addr); }

  const CacheStats& stats() const { return cache_.stats(); }
  void reset_stats() { cache_.reset_stats(); }
  void flush() { cache_.flush(); }
  const TlbConfig& config() const { return config_; }

 private:
  TlbConfig config_;
  Cache cache_;
};

}  // namespace drlhmd::sim
