// Program-family catalogue: six benign archetypes and seven malware
// families, each a parameterized WorkloadSpec template with per-application
// jitter so the corpus has intra-class diversity (the paper executes >3,000
// distinct applications).
#pragma once

#include <string>
#include <vector>

#include "sim/workload.hpp"
#include "util/rng.hpp"

namespace drlhmd::sim {

enum class ProgramFamily : std::uint8_t {
  // Benign archetypes.
  kWebServer = 0,
  kDatabase,
  kCompression,
  kMediaCodec,
  kScientific,
  kInteractive,
  // Malware families (paper: "Worms, Viruses, Botnets, Ransomware, and more").
  kRansomware,
  kWorm,
  kBotnet,
  kVirus,
  kSpyware,
  kRootkit,
  kCryptominer,

  kCount
};

inline constexpr std::size_t kNumProgramFamilies =
    static_cast<std::size_t>(ProgramFamily::kCount);
inline constexpr std::size_t kNumBenignFamilies = 6;
inline constexpr std::size_t kNumMalwareFamilies = 7;

std::string family_name(ProgramFamily family);
bool family_is_malware(ProgramFamily family);
std::vector<ProgramFamily> benign_families();
std::vector<ProgramFamily> malware_families();

/// Build the canonical spec for a family (no jitter) — the family template.
WorkloadSpec family_template(ProgramFamily family);

/// Instantiate one concrete application of the family: the template with
/// multiplicative jitter on sizes/fractions so every app is distinct.
/// `app_id` only names the instance; randomness comes from `rng`.
WorkloadSpec make_application(ProgramFamily family, std::uint32_t app_id,
                              util::Rng& rng);

}  // namespace drlhmd::sim
