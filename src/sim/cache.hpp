// Set-associative cache model with pluggable replacement policy.
//
// Functional (tag-only) simulation: no data payloads, just presence and
// replacement state, which is all that is needed to produce hit/miss event
// streams for the HPC counters.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace drlhmd::sim {

/// kSrrip is static re-reference interval prediction (2-bit RRPV per way):
/// scan-resistant, the common modern-LLC policy.
enum class ReplacementPolicy : std::uint8_t { kLru, kFifo, kRandom, kSrrip };

struct CacheConfig {
  std::string name = "cache";
  std::uint64_t size_bytes = 32 * 1024;
  std::uint32_t line_bytes = 64;
  std::uint32_t associativity = 8;
  ReplacementPolicy policy = ReplacementPolicy::kLru;

  std::uint64_t num_sets() const;
  /// Throws std::invalid_argument when geometry is inconsistent
  /// (non-power-of-two line/sets, size not divisible, zero fields).
  void validate() const;
};

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;

  double miss_rate() const {
    return accesses == 0 ? 0.0 : static_cast<double>(misses) / static_cast<double>(accesses);
  }
};

/// Tag-array cache.  `access` returns true on hit and installs the line on
/// miss (allocate-on-miss for both reads and writes, matching a write-
/// allocate write-back design).
class Cache {
 public:
  explicit Cache(CacheConfig config, util::Rng rng = util::Rng{0xCACE5EED});

  /// Look up the line containing `addr`; update replacement state.
  bool access(std::uint64_t addr);

  /// Probe without modifying state (for tests and inclusive-hierarchy checks).
  bool contains(std::uint64_t addr) const;

  /// Invalidate a single line if present; returns whether it was present.
  bool invalidate(std::uint64_t addr);

  void flush();

  const CacheConfig& config() const { return config_; }
  const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = CacheStats{}; }

 private:
  struct Way {
    std::uint64_t tag = 0;
    bool valid = false;
    std::uint64_t order = 0;  // LRU timestamp, FIFO insertion tick, or RRPV
  };

  std::uint64_t set_index(std::uint64_t addr) const;
  std::uint64_t tag_of(std::uint64_t addr) const;
  std::size_t victim_way(std::uint64_t set_base);

  CacheConfig config_;
  CacheStats stats_;
  std::vector<Way> ways_;  // num_sets * associativity, set-major
  std::uint64_t sets_ = 0;
  std::uint32_t line_shift_ = 0;
  std::uint64_t tick_ = 0;
  util::Rng rng_;
};

}  // namespace drlhmd::sim
