// Hardware prefetchers.
//
// Modern cores ship next-line and stride prefetchers that substantially
// reshape LLC traffic for streaming workloads — exactly the access class
// several of our program families (ransomware sweeps, codec streams) live
// in.  The models below sit next to the L2: on every demand access they may
// issue prefetch addresses that the hierarchy installs into L2/LLC.
//
// Ablation `bench_ablation_sim` shows how enabling/disabling prefetch moves
// the HPC feature distributions the detectors rely on.
#pragma once

#include <cstdint>
#include <vector>

namespace drlhmd::sim {

struct PrefetchStats {
  std::uint64_t issued = 0;      // prefetch addresses generated
  std::uint64_t triggers = 0;    // demand accesses observed
};

/// Prefetcher interface: observe a demand access, return addresses to
/// prefetch (possibly empty).
class Prefetcher {
 public:
  virtual ~Prefetcher() = default;

  /// `addr` is the demand access; returns prefetch candidate addresses.
  virtual std::vector<std::uint64_t> observe(std::uint64_t addr) = 0;

  const PrefetchStats& stats() const { return stats_; }
  void reset_stats() { stats_ = PrefetchStats{}; }

 protected:
  void record(std::size_t issued) {
    ++stats_.triggers;
    stats_.issued += issued;
  }

 private:
  PrefetchStats stats_;
};

/// Next-N-line prefetcher: on every demand miss-side access, prefetch the
/// following `degree` cache lines.
class NextLinePrefetcher final : public Prefetcher {
 public:
  explicit NextLinePrefetcher(std::uint32_t line_bytes = 64, std::uint32_t degree = 2);

  std::vector<std::uint64_t> observe(std::uint64_t addr) override;

 private:
  std::uint32_t line_bytes_;
  std::uint32_t degree_;
};

/// Reference-prediction-table stride prefetcher: tracks per-stream strides
/// (streams identified by address-region hash) and prefetches `degree`
/// strides ahead once a stride has been confirmed twice.
class StridePrefetcher final : public Prefetcher {
 public:
  explicit StridePrefetcher(std::uint32_t table_entries = 64, std::uint32_t degree = 4,
                            std::uint32_t line_bytes = 64);

  std::vector<std::uint64_t> observe(std::uint64_t addr) override;

 private:
  struct Entry {
    std::uint64_t tag = 0;
    std::uint64_t last_addr = 0;
    std::int64_t stride = 0;
    std::uint8_t confidence = 0;  // saturating 0..3; prefetch when >= 1
    bool valid = false;
  };

  std::size_t index_of(std::uint64_t addr) const;

  std::vector<Entry> table_;
  std::uint32_t degree_;
  std::uint32_t line_bytes_;
};

}  // namespace drlhmd::sim
