#include "sim/dataset_builder.hpp"

#include <stdexcept>

#include "util/parallel.hpp"
#include "util/serialize.hpp"
#include "util/table.hpp"

namespace drlhmd::sim {

std::size_t HpcCorpus::num_malware() const {
  std::size_t n = 0;
  for (const auto& r : records) n += r.malware ? 1 : 0;
  return n;
}

std::size_t HpcCorpus::num_benign() const { return records.size() - num_malware(); }

HpcCorpus build_corpus(const CorpusConfig& config) {
  if (config.windows_per_app == 0)
    throw std::invalid_argument("build_corpus: windows_per_app must be > 0");

  util::Rng rng(config.seed);
  HpcCorpus corpus;
  corpus.feature_names = PerfMonitor::feature_names();

  const auto benign = benign_families();
  const auto malware = malware_families();

  // Serial pre-pass: draw every application's spec and seeds in a fixed
  // order from the corpus rng, so the plan — and with it the corpus — is
  // identical at any thread count.
  struct AppPlan {
    WorkloadSpec spec;
    std::uint64_t workload_seed = 0;
    std::uint64_t core_seed = 0;
  };
  std::vector<AppPlan> plans;
  plans.reserve(config.benign_apps + config.malware_apps);
  auto plan_app = [&](ProgramFamily family, std::uint32_t app_id) {
    AppPlan plan;
    plan.spec = make_application(family, app_id, rng);
    plan.workload_seed = rng.next();
    plan.core_seed = rng.next();
    plans.push_back(std::move(plan));
  };
  for (std::size_t i = 0; i < config.benign_apps; ++i)
    plan_app(benign[i % benign.size()], static_cast<std::uint32_t>(i));
  for (std::size_t i = 0; i < config.malware_apps; ++i)
    plan_app(malware[i % malware.size()], static_cast<std::uint32_t>(i));

  // Simulate applications in parallel.  A fresh hierarchy per application:
  // every program starts cold, exactly as a fresh LXC container run does in
  // the paper's collection flow — which is also what makes the apps
  // independent.  Per-app blocks are flattened in plan order afterwards.
  std::vector<std::vector<HpcRecord>> blocks = util::parallel_map(
      "dataset_builder.apps", 0, plans.size(), 1, [&](std::size_t a) {
        const AppPlan& plan = plans[a];
        Core core(config.core, config.hierarchy,
                  Workload(plan.spec, plan.workload_seed), plan.core_seed);
        PerfMonitor monitor(core, config.monitor);
        monitor.warm_up();
        std::vector<HpcRecord> records;
        records.reserve(config.windows_per_app);
        for (std::size_t w = 0; w < config.windows_per_app; ++w) {
          HpcRecord rec;
          rec.app = plan.spec.name;
          rec.family = plan.spec.family;
          rec.malware = plan.spec.malware;
          rec.features = monitor.sample_window().values;
          records.push_back(std::move(rec));
        }
        return records;
      });
  for (auto& block : blocks)
    for (auto& rec : block) corpus.records.push_back(std::move(rec));

  return corpus;
}

ml::Dataset corpus_to_dataset(const HpcCorpus& corpus) {
  const std::size_t rows = corpus.records.size();
  const std::size_t cols = corpus.feature_names.size();
  for (std::size_t r = 0; r < rows; ++r) {
    if (corpus.records[r].features.size() != cols)
      throw std::invalid_argument(
          "corpus_to_dataset: record " + std::to_string(r) + " has " +
          std::to_string(corpus.records[r].features.size()) +
          " features, expected " + std::to_string(cols));
  }
  ml::Dataset data;
  data.feature_names = corpus.feature_names;
  // One exact-size allocation filled in place (per column, so every write
  // lands contiguously in the column-major storage) — no per-record push
  // growth path and no transient row staging.
  data.X = ml::FeatureMatrix(rows, cols);
  for (std::size_t c = 0; c < cols; ++c) {
    const std::span<double> col = data.X.col(c);
    for (std::size_t r = 0; r < rows; ++r) col[r] = corpus.records[r].features[c];
  }
  data.y.reserve(rows);
  for (const auto& rec : corpus.records) data.y.push_back(rec.malware ? 1 : 0);
  return data;
}

util::CsvDocument corpus_to_csv(const HpcCorpus& corpus) {
  util::CsvDocument doc;
  doc.header = {"app", "family", "label"};
  for (const auto& name : corpus.feature_names) doc.header.push_back(name);
  for (const auto& rec : corpus.records) {
    std::vector<std::string> row = {rec.app, rec.family,
                                    rec.malware ? "malware" : "benign"};
    for (double v : rec.features) row.push_back(util::Table::fmt(v, 6));
    doc.rows.push_back(std::move(row));
  }
  return doc;
}

HpcCorpus corpus_from_csv(const util::CsvDocument& doc) {
  HpcCorpus corpus;
  if (doc.header.size() < 4)
    throw std::invalid_argument("corpus_from_csv: header too short");
  corpus.feature_names.assign(doc.header.begin() + 3, doc.header.end());
  for (std::size_t i = 0; i < doc.rows.size(); ++i) {
    const auto& row = doc.rows[i];
    // Ragged rows would otherwise read out of bounds (short) or silently
    // widen one record (long); both indicate a mangled file, so refuse.
    if (row.size() != doc.header.size())
      throw std::invalid_argument(
          "corpus_from_csv: row " + std::to_string(i + 1) + " has " +
          std::to_string(row.size()) + " fields, expected " +
          std::to_string(doc.header.size()));
    HpcRecord rec;
    rec.app = row[0];
    rec.family = row[1];
    if (row[2] != "malware" && row[2] != "benign")
      throw std::invalid_argument("corpus_from_csv: bad label '" + row[2] + "'");
    rec.malware = row[2] == "malware";
    rec.features.reserve(corpus.feature_names.size());
    for (std::size_t c = 3; c < row.size(); ++c) rec.features.push_back(std::stod(row[c]));
    corpus.records.push_back(std::move(rec));
  }
  return corpus;
}

std::vector<std::uint8_t> serialize_corpus(const HpcCorpus& corpus) {
  util::ByteWriter w;
  w.write_string("CORP");
  w.write_u8(1);  // format version
  w.write_u64(corpus.feature_names.size());
  for (const auto& name : corpus.feature_names) w.write_string(name);
  w.write_u64(corpus.records.size());
  for (const HpcRecord& rec : corpus.records) {
    w.write_string(rec.app);
    w.write_string(rec.family);
    w.write_u8(rec.malware ? 1 : 0);
    w.write_f64_vec(rec.features);
  }
  return w.take();
}

HpcCorpus deserialize_corpus(std::span<const std::uint8_t> bytes) {
  util::ByteReader r(bytes);
  if (r.read_string() != "CORP")
    throw std::invalid_argument("deserialize_corpus: bad magic");
  if (r.read_u8() != 1)
    throw std::invalid_argument("deserialize_corpus: bad version");
  HpcCorpus corpus;
  const std::uint64_t n_names = r.read_u64();
  corpus.feature_names.reserve(static_cast<std::size_t>(n_names));
  for (std::uint64_t i = 0; i < n_names; ++i)
    corpus.feature_names.push_back(r.read_string());
  const std::uint64_t n_records = r.read_u64();
  corpus.records.reserve(static_cast<std::size_t>(n_records));
  for (std::uint64_t i = 0; i < n_records; ++i) {
    HpcRecord rec;
    rec.app = r.read_string();
    rec.family = r.read_string();
    rec.malware = r.read_u8() != 0;
    rec.features = r.read_f64_vec();
    corpus.records.push_back(std::move(rec));
  }
  return corpus;
}

}  // namespace drlhmd::sim
