#include "sim/core.hpp"

#include <stdexcept>

namespace drlhmd::sim {
namespace {

std::unique_ptr<BranchPredictor> make_predictor(PredictorKind kind) {
  switch (kind) {
    case PredictorKind::kBimodal: return make_bimodal();
    case PredictorKind::kGshare: return make_gshare();
  }
  throw std::invalid_argument("make_predictor: bad kind");
}

}  // namespace

Core::Core(const CoreConfig& config, const HierarchyConfig& hierarchy,
           Workload workload, std::uint64_t seed)
    : config_(config),
      hierarchy_(hierarchy),
      predictor_(make_predictor(config.predictor)),
      workload_(std::move(workload)),
      rng_(seed),
      next_context_switch_(config.context_switch_period) {}

void Core::charge_cycles(std::uint64_t n) {
  counts_.increment(HpcEvent::kCycles, n);
  counts_.increment(HpcEvent::kRefCycles, n);
  counts_.increment(HpcEvent::kBusCycles, n / 4);
}

void Core::step() {
  const MicroOp op = workload_.next();
  const std::uint64_t footprint = workload_.spec().code_footprint_bytes;

  // Fetch.
  const std::uint64_t pc = config_.code_base + (fetch_offset_ % footprint);
  const std::uint32_t fetch_latency = hierarchy_.access_instruction(pc, counts_);
  counts_.increment(HpcEvent::kInstructions);
  std::uint64_t cost = 1 + fetch_latency;
  if (fetch_latency > 0)
    counts_.increment(HpcEvent::kStalledCyclesFrontend, fetch_latency);

  switch (op.kind) {
    case OpKind::kAlu:
      counts_.increment(HpcEvent::kAluOps);
      fetch_offset_ += 4;
      break;

    case OpKind::kLoad:
    case OpKind::kStore: {
      const bool is_store = op.kind == OpKind::kStore;
      const std::uint64_t before_faults = counts_[HpcEvent::kDtlbLoadMisses] +
                                          counts_[HpcEvent::kDtlbStoreMisses];
      const std::uint32_t latency = hierarchy_.access_data(op.addr, is_store, counts_);
      const std::uint64_t after_faults = counts_[HpcEvent::kDtlbLoadMisses] +
                                         counts_[HpcEvent::kDtlbStoreMisses];
      // Load-to-use stall beyond the pipelined L1 latency.
      const std::uint32_t l1 = hierarchy_.config().l1_latency;
      if (latency > l1) {
        // Overlapped misses: only 1/memory_parallelism of the raw stall is
        // exposed to the pipeline.
        const auto stall = static_cast<std::uint32_t>(
            static_cast<double>(latency - l1) /
            std::max(1.0, config_.memory_parallelism));
        cost += stall;
        counts_.increment(HpcEvent::kStalledCyclesBackend, stall);
      }
      if (after_faults > before_faults && rng_.bernoulli(config_.page_fault_prob)) {
        counts_.increment(HpcEvent::kPageFaults);
        cost += config_.page_fault_penalty;
      }
      fetch_offset_ += 4;
      break;
    }

    case OpKind::kBranch: {
      counts_.increment(HpcEvent::kBranches);
      counts_.increment(HpcEvent::kBranchLoads);
      // Stable per-site PC so the predictor can learn each site's bias.
      const std::uint64_t site_pc =
          config_.code_base + ((static_cast<std::uint64_t>(op.branch_site) * 16) % footprint);
      const bool correct = predictor_->observe(site_pc, op.taken);
      if (!correct) {
        counts_.increment(HpcEvent::kBranchMisses);
        counts_.increment(HpcEvent::kBranchLoadMisses);
        cost += config_.mispredict_penalty;
      }
      if (op.taken) {
        const auto displaced = static_cast<std::int64_t>(fetch_offset_) + op.jump_bytes;
        fetch_offset_ = static_cast<std::uint64_t>(
            displaced < 0 ? displaced + static_cast<std::int64_t>(footprint) : displaced);
      } else {
        fetch_offset_ += 4;
      }
      break;
    }
  }

  charge_cycles(cost);

  if (counts_[HpcEvent::kCycles] >= next_context_switch_) {
    counts_.increment(HpcEvent::kContextSwitches);
    charge_cycles(config_.context_switch_penalty);
    next_context_switch_ = counts_[HpcEvent::kCycles] + config_.context_switch_period;
  }
}

void Core::run_cycles(std::uint64_t budget) {
  const std::uint64_t target = counts_[HpcEvent::kCycles] + budget;
  while (counts_[HpcEvent::kCycles] < target) step();
}

void Core::run_instructions(std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) step();
}

double Core::ipc() const {
  const std::uint64_t c = cycles();
  return c == 0 ? 0.0 : static_cast<double>(instructions()) / static_cast<double>(c);
}

}  // namespace drlhmd::sim
