#include "adversarial/lowprofool.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/parallel.hpp"

namespace drlhmd::adversarial {

LowProFool::LowProFool(const ml::LogisticRegression& surrogate,
                       ml::FeatureBounds bounds, std::vector<double> importance,
                       LowProFoolConfig config)
    : surrogate_(surrogate),
      bounds_(std::move(bounds)),
      importance_(normalize_importance(std::move(importance))),
      config_(config) {
  if (!surrogate_.trained())
    throw std::logic_error("LowProFool: surrogate must be trained");
  if (surrogate_.weights().size() != importance_.size())
    throw std::invalid_argument("LowProFool: importance width mismatch");
  if (bounds_.lo.size() != importance_.size())
    throw std::invalid_argument("LowProFool: bounds width mismatch");
  if (config_.max_steps == 0)
    throw std::invalid_argument("LowProFool: max_steps must be > 0");
  if (config_.step_size <= 0.0)
    throw std::invalid_argument("LowProFool: step_size must be > 0");
  if (config_.p_norm < 1.0)
    throw std::invalid_argument("LowProFool: p_norm must be >= 1");
  if (config_.target_label != 0 && config_.target_label != 1)
    throw std::invalid_argument("LowProFool: target_label must be 0/1");
  if (config_.momentum < 0.0 || config_.momentum >= 1.0)
    throw std::invalid_argument("LowProFool: momentum out of [0,1)");
  if (config_.confidence_margin < 0.5 || config_.confidence_margin >= 1.0)
    throw std::invalid_argument("LowProFool: confidence_margin out of [0.5,1)");
}

double LowProFool::weighted_norm(std::span<const double> r) const {
  double acc = 0.0;
  for (std::size_t i = 0; i < r.size(); ++i)
    acc += std::pow(std::abs(r[i] * importance_[i]), config_.p_norm);
  return std::pow(acc, 1.0 / config_.p_norm);
}

AttackResult LowProFool::attack(std::span<const double> sample) const {
  const std::size_t width = importance_.size();
  if (sample.size() != width)
    throw std::invalid_argument("LowProFool::attack: feature width mismatch");

  std::vector<double> r(width, 0.0);
  std::vector<double> velocity(width, 0.0);
  std::vector<double> x_adv(sample.begin(), sample.end());

  AttackResult best;
  best.adversarial.assign(sample.begin(), sample.end());
  best.perturbation.assign(width, 0.0);
  double best_norm = std::numeric_limits<double>::infinity();

  for (std::size_t step = 0; step < config_.max_steps; ++step) {
    // Gradient of the classification loss toward the target label.
    const std::vector<double> loss_grad =
        surrogate_.loss_gradient(x_adv, config_.target_label);

    for (std::size_t i = 0; i < width; ++i) {
      // d/dr_i  lambda * ||r ⊙ v||_p^2
      //   = lambda * 2 * ||r ⊙ v||_p^(2-p) * |r_i v_i|^(p-1) * sign(r_i) * v_i
      double reg_grad = 0.0;
      if (r[i] != 0.0) {
        const double norm = weighted_norm(r);
        if (norm > 0.0) {
          const double sign = r[i] > 0.0 ? 1.0 : -1.0;
          reg_grad = config_.lambda * 2.0 *
                     std::pow(norm, 2.0 - config_.p_norm) *
                     std::pow(std::abs(r[i] * importance_[i]),
                              config_.p_norm - 1.0) *
                     sign * importance_[i];
        }
      }
      const double grad = loss_grad[i] + reg_grad;
      velocity[i] = config_.momentum * velocity[i] - config_.step_size * grad;
      r[i] += velocity[i];
    }

    // Apply clipping in sample space (Algorithm 1: clipped min/max values).
    for (std::size_t i = 0; i < width; ++i) x_adv[i] = sample[i] + r[i];
    bounds_.clip(x_adv);
    for (std::size_t i = 0; i < width; ++i) r[i] = x_adv[i] - sample[i];

    // Keep the best imperceptible success (target confidence must clear the
    // margin, not just the 0.5 decision boundary).
    const double p_malware = surrogate_.predict_proba(x_adv);
    const double p_target =
        config_.target_label == 1 ? p_malware : 1.0 - p_malware;
    if (p_target >= config_.confidence_margin) {
      const double norm = weighted_norm(r);
      if (norm < best_norm) {
        best_norm = norm;
        best.adversarial = x_adv;
        best.perturbation = r;
        best.success = true;
        best.weighted_norm = norm;
        best.steps_used = step + 1;
      }
    }
  }

  if (!best.success) {
    // Report the final attempt for diagnostics.
    best.adversarial = x_adv;
    best.perturbation = r;
    best.weighted_norm = weighted_norm(r);
    best.steps_used = config_.max_steps;
  }
  return best;
}

std::vector<AttackResult> LowProFool::attack_batch(const ml::Dataset& data) const {
  data.validate();
  std::vector<std::size_t> malware_rows;
  for (std::size_t i = 0; i < data.size(); ++i)
    if (data.y[i] == 1) malware_rows.push_back(i);
  const ml::BatchView batch = data.view();
  return util::parallel_map(
      "lowprofool.attack_batch", 0, malware_rows.size(), 1,
      [&](std::size_t j) { return attack(batch.row_copy(malware_rows[j])); });
}

ml::Dataset LowProFool::attack_dataset(const ml::Dataset& data,
                                       bool successful_only) const {
  std::vector<AttackResult> attacks = attack_batch(data);
  ml::Dataset out;
  out.feature_names = data.feature_names;
  std::size_t j = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data.y[i] != 1) {
      out.push_from(data, i);
      continue;
    }
    AttackResult& result = attacks[j++];
    if (result.success || !successful_only) {
      out.push(result.adversarial, 1);
    } else {
      out.push_from(data, i);  // data.y[i] == 1 here
    }
  }
  return out;
}

AttackCampaignReport LowProFool::evaluate_campaign(const ml::Dataset& data) const {
  const std::vector<AttackResult> attacks = attack_batch(data);
  AttackCampaignReport report;
  report.attempted = attacks.size();
  double norm_sum = 0.0;
  double linf_sum = 0.0;
  // Row-order accumulation: identical sums to the old sequential sweep.
  for (const AttackResult& result : attacks) {
    if (!result.success) continue;
    ++report.succeeded;
    norm_sum += result.weighted_norm;
    double linf = 0.0;
    for (double v : result.perturbation) linf = std::max(linf, std::abs(v));
    linf_sum += linf;
  }
  if (report.attempted > 0)
    report.success_rate =
        static_cast<double>(report.succeeded) / static_cast<double>(report.attempted);
  if (report.succeeded > 0) {
    report.mean_weighted_norm = norm_sum / static_cast<double>(report.succeeded);
    report.mean_linf = linf_sum / static_cast<double>(report.succeeded);
  }
  return report;
}

}  // namespace drlhmd::adversarial
