// LowProFool adversarial-sample generation for tabular HPC data
// (paper Section 2.4, Algorithm 1).
//
// Objective per sample:  g(r) = L(x + r, t) + lambda * || r ⊙ v ||_p^2
// minimized by gradient descent on r, where L is the surrogate LR's
// binary-cross-entropy toward the target label t (benign), v is a feature-
// importance vector, and x + r is clipped to the observed per-feature
// min/max after every step.  Across steps the attack keeps the *best*
// perturbation: successful (surrogate says benign) with minimal weighted
// norm — "assign the best imperceptible perturbation at each step".
#pragma once

#include <optional>

#include "adversarial/feature_importance.hpp"
#include "ml/dataset.hpp"
#include "ml/logistic_regression.hpp"
#include "ml/preprocess.hpp"

namespace drlhmd::adversarial {

struct LowProFoolConfig {
  std::size_t max_steps = 150;
  double step_size = 0.08;      // gradient-descent rate on r
  double lambda = 0.5;          // imperceptibility weight
  double p_norm = 2.0;          // weighted l_p exponent (p >= 1)
  int target_label = 0;         // benign
  double momentum = 0.9;        // heavy-ball on the perturbation updates
  /// Required surrogate confidence in the target label for an attack to
  /// count as successful.  Values well above 0.5 push adversarial samples
  /// deep into the target class, which is what gives the paper's attacks
  /// their near-total transferability to unseen (tree/NN) detectors.
  double confidence_margin = 0.90;
};

/// Result of attacking one sample.
struct AttackResult {
  std::vector<double> adversarial;   // x + r (clipped)
  std::vector<double> perturbation;  // r
  bool success = false;              // surrogate classifies as target label
  double weighted_norm = 0.0;        // || r ⊙ v ||_p at the kept step
  std::size_t steps_used = 0;
};

/// Summary over a whole attacked dataset.
struct AttackCampaignReport {
  std::size_t attempted = 0;
  std::size_t succeeded = 0;
  double success_rate = 0.0;
  double mean_weighted_norm = 0.0;   // over successes
  double mean_linf = 0.0;            // max |r_i| over successes
};

class LowProFool {
 public:
  /// `surrogate` must be trained on the same (scaled) feature space as the
  /// samples to attack; `bounds` are the observed per-feature min/max used
  /// for clipping (Algorithm 1 line 1); `importance` is the weight vector v.
  LowProFool(const ml::LogisticRegression& surrogate, ml::FeatureBounds bounds,
             std::vector<double> importance, LowProFoolConfig config = {});

  AttackResult attack(std::span<const double> sample) const;

  /// Attack every malware row (label 1) of `data` in parallel; slot j of
  /// the result holds the attack on the j-th malware row in dataset order.
  /// attack() is pure, so the batch is bitwise identical at any thread
  /// count.  Building block for attack_dataset / evaluate_campaign.
  std::vector<AttackResult> attack_batch(const ml::Dataset& data) const;

  /// Attack every malware row (label 1) of `data`; benign rows are passed
  /// through untouched.  Returned dataset keeps ground-truth labels: an
  /// adversarial malware sample is still label 1 — that is exactly why it
  /// degrades the detectors.  When `successful_only`, failed attacks keep
  /// the original (unperturbed) malware sample.
  ml::Dataset attack_dataset(const ml::Dataset& data,
                             bool successful_only = true) const;

  /// Campaign statistics over the malware rows of `data`.
  AttackCampaignReport evaluate_campaign(const ml::Dataset& data) const;

  const std::vector<double>& importance() const { return importance_; }

 private:
  double weighted_norm(std::span<const double> r) const;

  const ml::LogisticRegression& surrogate_;
  ml::FeatureBounds bounds_;
  std::vector<double> importance_;
  LowProFoolConfig config_;
};

}  // namespace drlhmd::adversarial
