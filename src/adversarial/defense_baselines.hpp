// Defense baselines that the paper's adversarial-training + RL approach is
// compared against (Table 1 lists them as prior HMD defenses):
//
//   * RandomizedEnsembleDefense — RHMD-style (Khasawneh et al., MICRO'17):
//     a committee of structurally diverse detectors; each inference is
//     served by one member chosen at random, so a gradient crafted against
//     any fixed surrogate only evades the members that share its boundary.
//   * MajorityVoteDefense — the deterministic committee counterpart:
//     majority vote over the same members (no unpredictability, but
//     variance reduction).
//
// bench_defense_comparison pits both against plain adversarial training.
#pragma once

#include <memory>
#include <vector>

#include "ml/classifier.hpp"
#include "util/rng.hpp"

namespace drlhmd::adversarial {

/// Committee built from differently-seeded, differently-structured models.
class RandomizedEnsembleDefense {
 public:
  /// Takes ownership of the (untrained) member models.
  explicit RandomizedEnsembleDefense(
      std::vector<std::unique_ptr<ml::Classifier>> members,
      std::uint64_t seed = 83);

  void fit(const ml::Dataset& train);

  /// Stochastic inference: a randomly chosen member answers.
  int predict(std::span<const double> features) const;

  /// Evaluate over a labeled set with randomized member selection.
  ml::MetricReport evaluate(const ml::Dataset& data) const;

  std::size_t member_count() const { return members_.size(); }
  const ml::Classifier& member(std::size_t i) const;
  bool trained() const;

 private:
  std::vector<std::unique_ptr<ml::Classifier>> members_;
  mutable util::Rng rng_;
};

/// Deterministic majority vote over the same kind of committee.
class MajorityVoteDefense {
 public:
  explicit MajorityVoteDefense(std::vector<std::unique_ptr<ml::Classifier>> members);

  void fit(const ml::Dataset& train);
  int predict(std::span<const double> features) const;
  double predict_proba(std::span<const double> features) const;  // mean score
  ml::MetricReport evaluate(const ml::Dataset& data) const;

  std::size_t member_count() const { return members_.size(); }

 private:
  std::vector<std::unique_ptr<ml::Classifier>> members_;
};

/// The standard diverse committee: the five classical detectors with
/// distinct seeds.
std::vector<std::unique_ptr<ml::Classifier>> make_diverse_committee(
    std::uint64_t seed = 0);

}  // namespace drlhmd::adversarial
