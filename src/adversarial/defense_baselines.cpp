#include "adversarial/defense_baselines.hpp"

#include <stdexcept>

#include "ml/model_zoo.hpp"

namespace drlhmd::adversarial {

RandomizedEnsembleDefense::RandomizedEnsembleDefense(
    std::vector<std::unique_ptr<ml::Classifier>> members, std::uint64_t seed)
    : members_(std::move(members)), rng_(seed) {
  if (members_.empty())
    throw std::invalid_argument("RandomizedEnsembleDefense: empty committee");
  for (const auto& m : members_)
    if (m == nullptr)
      throw std::invalid_argument("RandomizedEnsembleDefense: null member");
}

void RandomizedEnsembleDefense::fit(const ml::Dataset& train) {
  for (auto& member : members_) member->fit(train);
}

bool RandomizedEnsembleDefense::trained() const {
  for (const auto& member : members_)
    if (!member->trained()) return false;
  return true;
}

const ml::Classifier& RandomizedEnsembleDefense::member(std::size_t i) const {
  if (i >= members_.size())
    throw std::out_of_range("RandomizedEnsembleDefense::member: bad index");
  return *members_[i];
}

int RandomizedEnsembleDefense::predict(std::span<const double> features) const {
  const std::size_t pick = static_cast<std::size_t>(rng_.next_below(members_.size()));
  return members_[pick]->predict(features);
}

ml::MetricReport RandomizedEnsembleDefense::evaluate(const ml::Dataset& data) const {
  data.validate();
  std::vector<int> predictions;
  predictions.reserve(data.size());
  // Row-at-a-time on purpose: each predict() draws from the defense's rng,
  // so the per-row draw order is part of the behavior.
  std::vector<double> row(data.num_features());
  for (std::size_t i = 0; i < data.size(); ++i) {
    data.gather_row(i, row);
    predictions.push_back(predict(row));
  }
  return ml::evaluate_predictions(data.y, predictions);
}

MajorityVoteDefense::MajorityVoteDefense(
    std::vector<std::unique_ptr<ml::Classifier>> members)
    : members_(std::move(members)) {
  if (members_.empty())
    throw std::invalid_argument("MajorityVoteDefense: empty committee");
  for (const auto& m : members_)
    if (m == nullptr) throw std::invalid_argument("MajorityVoteDefense: null member");
}

void MajorityVoteDefense::fit(const ml::Dataset& train) {
  for (auto& member : members_) member->fit(train);
}

double MajorityVoteDefense::predict_proba(std::span<const double> features) const {
  double total = 0.0;
  for (const auto& member : members_) total += member->predict_proba(features);
  return total / static_cast<double>(members_.size());
}

int MajorityVoteDefense::predict(std::span<const double> features) const {
  std::size_t votes = 0;
  for (const auto& member : members_) votes += member->predict(features) == 1 ? 1 : 0;
  return 2 * votes >= members_.size() ? 1 : 0;
}

ml::MetricReport MajorityVoteDefense::evaluate(const ml::Dataset& data) const {
  data.validate();
  // Batch-score each member over the whole set, then vote per row in member
  // order — the same count predict() produces row by row.
  std::vector<std::vector<double>> member_scores(members_.size());
  for (std::size_t m = 0; m < members_.size(); ++m)
    member_scores[m] = members_[m]->predict_proba_batch(data);
  std::vector<int> predictions;
  predictions.reserve(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    std::size_t votes = 0;
    for (const auto& scores : member_scores)
      votes += scores[i] >= 0.5 ? 1 : 0;
    predictions.push_back(2 * votes >= members_.size() ? 1 : 0);
  }
  return ml::evaluate_predictions(data.y, predictions);
}

std::vector<std::unique_ptr<ml::Classifier>> make_diverse_committee(
    std::uint64_t seed) {
  return ml::make_classical_models(seed);
}

}  // namespace drlhmd::adversarial
