// Feature-importance vectors for the weighted l_p imperceptibility penalty
// in LowProFool (Ballet et al. 2019, adapted in paper Section 2.4).
// Two estimators: |LR coefficient| (the surrogate's own view) and absolute
// Pearson correlation with the label (the original LowProFool choice).
// Both are normalized to unit l2 norm.
#pragma once

#include <vector>

#include "ml/dataset.hpp"
#include "ml/logistic_regression.hpp"

namespace drlhmd::adversarial {

std::vector<double> importance_from_lr(const ml::LogisticRegression& surrogate);

std::vector<double> importance_pearson(const ml::Dataset& data);

/// Normalize a non-negative importance vector to unit l2 norm; all-zero
/// input becomes uniform.
std::vector<double> normalize_importance(std::vector<double> v);

}  // namespace drlhmd::adversarial
