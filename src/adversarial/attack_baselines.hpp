// Attack baselines for comparison with LowProFool.
//
// The paper positions LowProFool's weighted-l_p imperceptibility against
// cruder evasion strategies; these two baselines bound the design space:
//   * FGSM (Goodfellow et al.) — single signed-gradient step of fixed
//     magnitude epsilon, no imperceptibility weighting;
//   * RandomNoise — label-agnostic uniform perturbation of magnitude
//     epsilon, the "can we evade by just being noisy" null hypothesis.
// Both clip to the observed feature bounds like LowProFool does, so the
// comparison isolates the *direction* of the perturbation.
#pragma once

#include "adversarial/lowprofool.hpp"
#include "ml/logistic_regression.hpp"
#include "ml/preprocess.hpp"
#include "util/rng.hpp"

namespace drlhmd::adversarial {

struct FgsmConfig {
  double epsilon = 1.0;    // step magnitude in scaled-feature units
  int target_label = 0;    // craft toward benign
};

/// Fast Gradient Sign Method against an LR surrogate.
class FgsmAttack {
 public:
  FgsmAttack(const ml::LogisticRegression& surrogate, ml::FeatureBounds bounds,
             FgsmConfig config = {});

  AttackResult attack(std::span<const double> sample) const;
  ml::Dataset attack_dataset(const ml::Dataset& data) const;
  AttackCampaignReport evaluate_campaign(const ml::Dataset& data) const;

 private:
  const ml::LogisticRegression& surrogate_;
  ml::FeatureBounds bounds_;
  FgsmConfig config_;
};

struct RandomNoiseConfig {
  double epsilon = 1.0;     // uniform perturbation half-width
  int target_label = 0;
  std::uint64_t seed = 71;
};

/// Uniform random perturbation (evasion null hypothesis).
class RandomNoiseAttack {
 public:
  RandomNoiseAttack(const ml::LogisticRegression& surrogate,
                    ml::FeatureBounds bounds, RandomNoiseConfig config = {});

  AttackResult attack(std::span<const double> sample) const;
  ml::Dataset attack_dataset(const ml::Dataset& data) const;
  AttackCampaignReport evaluate_campaign(const ml::Dataset& data) const;

 private:
  const ml::LogisticRegression& surrogate_;
  ml::FeatureBounds bounds_;
  RandomNoiseConfig config_;
  mutable util::Rng rng_;
};

}  // namespace drlhmd::adversarial
