#include "adversarial/attack_baselines.hpp"

#include <cmath>
#include <functional>
#include <stdexcept>

namespace drlhmd::adversarial {
namespace {

double linf(std::span<const double> r) {
  double m = 0.0;
  for (double v : r) m = std::max(m, std::abs(v));
  return m;
}

AttackCampaignReport campaign_over_malware(
    const ml::Dataset& data,
    const std::function<AttackResult(std::span<const double>)>& attack) {
  data.validate();
  AttackCampaignReport report;
  double norm_sum = 0.0, linf_sum = 0.0;
  std::vector<double> row(data.num_features());
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data.y[i] != 1) continue;
    ++report.attempted;
    data.gather_row(i, row);
    const AttackResult result = attack(row);
    if (!result.success) continue;
    ++report.succeeded;
    norm_sum += result.weighted_norm;
    linf_sum += linf(result.perturbation);
  }
  if (report.attempted > 0)
    report.success_rate = static_cast<double>(report.succeeded) /
                          static_cast<double>(report.attempted);
  if (report.succeeded > 0) {
    report.mean_weighted_norm = norm_sum / static_cast<double>(report.succeeded);
    report.mean_linf = linf_sum / static_cast<double>(report.succeeded);
  }
  return report;
}

ml::Dataset attacked_dataset(
    const ml::Dataset& data,
    const std::function<AttackResult(std::span<const double>)>& attack) {
  data.validate();
  ml::Dataset out;
  out.feature_names = data.feature_names;
  std::vector<double> row(data.num_features());
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data.y[i] != 1) {
      out.push_from(data, i);
      continue;
    }
    data.gather_row(i, row);
    AttackResult result = attack(row);
    out.push(result.success ? std::span<const double>(result.adversarial)
                            : std::span<const double>(row),
             1);
  }
  return out;
}

double plain_l2(std::span<const double> r) {
  double acc = 0.0;
  for (double v : r) acc += v * v;
  return std::sqrt(acc);
}

}  // namespace

FgsmAttack::FgsmAttack(const ml::LogisticRegression& surrogate,
                       ml::FeatureBounds bounds, FgsmConfig config)
    : surrogate_(surrogate), bounds_(std::move(bounds)), config_(config) {
  if (!surrogate_.trained()) throw std::logic_error("FgsmAttack: surrogate not trained");
  if (config_.epsilon <= 0.0)
    throw std::invalid_argument("FgsmAttack: epsilon must be > 0");
  if (config_.target_label != 0 && config_.target_label != 1)
    throw std::invalid_argument("FgsmAttack: target_label must be 0/1");
}

AttackResult FgsmAttack::attack(std::span<const double> sample) const {
  const auto grad = surrogate_.loss_gradient(sample, config_.target_label);
  AttackResult result;
  result.adversarial.assign(sample.begin(), sample.end());
  result.perturbation.assign(sample.size(), 0.0);
  for (std::size_t i = 0; i < sample.size(); ++i) {
    // Descend the loss toward the target: step against the gradient sign.
    const double step = grad[i] > 0 ? -config_.epsilon
                                    : (grad[i] < 0 ? config_.epsilon : 0.0);
    result.adversarial[i] = sample[i] + step;
  }
  bounds_.clip(result.adversarial);
  for (std::size_t i = 0; i < sample.size(); ++i)
    result.perturbation[i] = result.adversarial[i] - sample[i];
  result.success = surrogate_.predict(result.adversarial) == config_.target_label;
  result.weighted_norm = plain_l2(result.perturbation);
  result.steps_used = 1;
  return result;
}

ml::Dataset FgsmAttack::attack_dataset(const ml::Dataset& data) const {
  return attacked_dataset(data, [&](std::span<const double> x) { return attack(x); });
}

AttackCampaignReport FgsmAttack::evaluate_campaign(const ml::Dataset& data) const {
  return campaign_over_malware(data,
                               [&](std::span<const double> x) { return attack(x); });
}

RandomNoiseAttack::RandomNoiseAttack(const ml::LogisticRegression& surrogate,
                                     ml::FeatureBounds bounds,
                                     RandomNoiseConfig config)
    : surrogate_(surrogate),
      bounds_(std::move(bounds)),
      config_(config),
      rng_(config.seed) {
  if (!surrogate_.trained())
    throw std::logic_error("RandomNoiseAttack: surrogate not trained");
  if (config_.epsilon <= 0.0)
    throw std::invalid_argument("RandomNoiseAttack: epsilon must be > 0");
  if (config_.target_label != 0 && config_.target_label != 1)
    throw std::invalid_argument("RandomNoiseAttack: target_label must be 0/1");
}

AttackResult RandomNoiseAttack::attack(std::span<const double> sample) const {
  AttackResult result;
  result.adversarial.assign(sample.begin(), sample.end());
  result.perturbation.assign(sample.size(), 0.0);
  for (std::size_t i = 0; i < sample.size(); ++i)
    result.adversarial[i] = sample[i] + rng_.uniform(-config_.epsilon, config_.epsilon);
  bounds_.clip(result.adversarial);
  for (std::size_t i = 0; i < sample.size(); ++i)
    result.perturbation[i] = result.adversarial[i] - sample[i];
  result.success = surrogate_.predict(result.adversarial) == config_.target_label;
  result.weighted_norm = plain_l2(result.perturbation);
  result.steps_used = 1;
  return result;
}

ml::Dataset RandomNoiseAttack::attack_dataset(const ml::Dataset& data) const {
  return attacked_dataset(data, [&](std::span<const double> x) { return attack(x); });
}

AttackCampaignReport RandomNoiseAttack::evaluate_campaign(
    const ml::Dataset& data) const {
  return campaign_over_malware(data,
                               [&](std::span<const double> x) { return attack(x); });
}

}  // namespace drlhmd::adversarial
