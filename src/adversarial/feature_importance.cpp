#include "adversarial/feature_importance.hpp"

#include <cmath>
#include <stdexcept>

#include "util/stats.hpp"

namespace drlhmd::adversarial {

std::vector<double> normalize_importance(std::vector<double> v) {
  if (v.empty()) throw std::invalid_argument("normalize_importance: empty vector");
  double norm_sq = 0.0;
  for (double x : v) {
    if (x < 0.0) throw std::invalid_argument("normalize_importance: negative weight");
    norm_sq += x * x;
  }
  if (norm_sq == 0.0) {
    const double uniform = 1.0 / std::sqrt(static_cast<double>(v.size()));
    for (auto& x : v) x = uniform;
    return v;
  }
  const double inv = 1.0 / std::sqrt(norm_sq);
  for (auto& x : v) x *= inv;
  return v;
}

std::vector<double> importance_from_lr(const ml::LogisticRegression& surrogate) {
  if (!surrogate.trained())
    throw std::logic_error("importance_from_lr: surrogate not trained");
  std::vector<double> v = surrogate.weights();
  for (auto& x : v) x = std::abs(x);
  return normalize_importance(std::move(v));
}

std::vector<double> importance_pearson(const ml::Dataset& data) {
  data.validate();
  if (data.size() == 0) throw std::invalid_argument("importance_pearson: empty data");
  const std::size_t width = data.num_features();
  std::vector<double> labels(data.size());
  for (std::size_t i = 0; i < data.size(); ++i)
    labels[i] = static_cast<double>(data.y[i]);
  std::vector<double> v(width);
  for (std::size_t f = 0; f < width; ++f)
    v[f] = std::abs(util::pearson(data.col(f), labels));
  return normalize_importance(std::move(v));
}

}  // namespace drlhmd::adversarial
