// One shared steady-clock epoch + compact thread identities for the whole
// obs layer.
//
// PR-1 gave every component its own construction-time epoch (Logger,
// Tracer, ...), so a log line's ts_ms and a trace span's start_us could not
// be correlated.  Everything now measures from telemetry_epoch(), a single
// process-wide steady_clock anchor pinned the first time any obs component
// asks for it.  current_thread_id() hands out small dense ids (0 = first
// caller, usually the main thread) so trace events can name threads without
// leaking unstable std::thread::id hashes into exported files.
#pragma once

#include <chrono>
#include <cstdint>

namespace drlhmd::obs {

/// Process-wide steady-clock anchor; identical for every caller.
std::chrono::steady_clock::time_point telemetry_epoch();

/// Microseconds elapsed since telemetry_epoch().
double now_us_since_epoch();

/// Milliseconds elapsed since telemetry_epoch().
double now_ms_since_epoch();

/// Small dense id of the calling thread (0, 1, 2, ... in first-call order);
/// stable for the thread's lifetime.
std::uint32_t current_thread_id();

}  // namespace drlhmd::obs
