#include "obs/benchdiff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace drlhmd::obs {

namespace {

bool contains(const std::string& haystack, const char* needle) {
  return haystack.find(needle) != std::string::npos;
}

/// Array elements are keyed by a distinguishing member when one exists, so
/// reordering models in a bench file does not rename its metrics.
std::string element_key(const JsonValue& element, std::size_t index) {
  for (const char* member : {"model", "name", "bench", "label", "threads"}) {
    if (const JsonValue* v = element.find(member)) {
      if (v->is_string() && !v->string.empty()) return v->string;
      if (v->is_number()) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.9g", v->number);
        return std::string(member) + buf;
      }
    }
  }
  return std::to_string(index);
}

void flatten(const JsonValue& node, const std::string& prefix,
             std::vector<BenchMetric>& out) {
  switch (node.kind) {
    case JsonValue::Kind::kNumber:
      out.push_back({prefix, node.number, direction_for_path(prefix)});
      return;
    case JsonValue::Kind::kObject: {
      // Unified-schema metric: {"name":..,"value":..,"higher_is_better":..}
      // collapses to one metric with an explicit direction.
      const JsonValue* name = node.find("name");
      const JsonValue* value = node.find("value");
      if (name != nullptr && name->is_string() && value != nullptr &&
          value->is_number()) {
        // The enclosing array may already have keyed this element by its
        // "name" member; don't append the name a second time.
        const std::string& n = name->string;
        const bool already_keyed =
            prefix == n ||
            (prefix.size() > n.size() &&
             prefix[prefix.size() - n.size() - 1] == '.' &&
             prefix.compare(prefix.size() - n.size(), n.size(), n) == 0);
        const std::string path =
            already_keyed ? prefix
                          : (prefix.empty() ? n : prefix + "." + n);
        MetricDirection dir = direction_for_path(path);
        if (const JsonValue* hib = node.find("higher_is_better");
            hib != nullptr && hib->is_bool()) {
          dir = hib->boolean ? MetricDirection::kHigherIsBetter
                             : MetricDirection::kLowerIsBetter;
        }
        out.push_back({path, value->number, dir});
        return;
      }
      for (const auto& [key, member] : node.object)
        flatten(member, prefix.empty() ? key : prefix + "." + key, out);
      return;
    }
    case JsonValue::Kind::kArray:
      for (std::size_t i = 0; i < node.array.size(); ++i) {
        const std::string key = element_key(node.array[i], i);
        flatten(node.array[i], prefix.empty() ? key : prefix + "." + key,
                out);
      }
      return;
    default:
      return;  // strings/bools/nulls are context, not metrics
  }
}

}  // namespace

MetricDirection direction_for_path(const std::string& path) {
  // Compare against the final path segment so a model named "throughput"
  // in a parent key cannot flip its children's direction.
  const std::size_t dot = path.rfind('.');
  const std::string leaf = dot == std::string::npos ? path
                                                    : path.substr(dot + 1);
  for (const char* needle :
       {"ns_per", "us_per", "ms_per", "per_sample", "seconds", "latency",
        "_ns", "_us", "_ms", "time"}) {
    if (contains(leaf, needle)) return MetricDirection::kLowerIsBetter;
  }
  for (const char* needle :
       {"speedup", "throughput", "per_second", "rows_per", "samples_per",
        "f1", "accuracy", "precision", "recall", "auc", "score"}) {
    if (contains(leaf, needle)) return MetricDirection::kHigherIsBetter;
  }
  return MetricDirection::kInformational;
}

std::vector<BenchMetric> flatten_bench(const JsonValue& doc) {
  std::vector<BenchMetric> out;
  flatten(doc, "", out);
  std::sort(out.begin(), out.end(),
            [](const BenchMetric& a, const BenchMetric& b) {
              return a.path < b.path;
            });
  return out;
}

double MetricComparison::badness() const {
  if (direction == MetricDirection::kInformational) return 0.0;
  if (!std::isfinite(baseline) || !std::isfinite(candidate) ||
      baseline <= 0.0 || candidate <= 0.0)
    return 0.0;  // no meaningful ratio
  return direction == MetricDirection::kLowerIsBetter
             ? candidate / baseline
             : baseline / candidate;
}

std::vector<MetricComparison> BenchDiff::regressions(double tolerance) const {
  std::vector<MetricComparison> out;
  for (const auto& c : compared)
    if (c.regressed(tolerance)) out.push_back(c);
  return out;
}

BenchDiff bench_diff(const JsonValue& baseline, const JsonValue& candidate,
                     const std::vector<std::string>& metric_filters) {
  const auto keep = [&](const std::string& path) {
    if (metric_filters.empty()) return true;
    for (const auto& f : metric_filters)
      if (contains(path, f.c_str())) return true;
    return false;
  };

  const std::vector<BenchMetric> base = flatten_bench(baseline);
  const std::vector<BenchMetric> cand = flatten_bench(candidate);

  BenchDiff diff;
  std::size_t i = 0, j = 0;
  while (i < base.size() || j < cand.size()) {
    if (j >= cand.size() || (i < base.size() && base[i].path < cand[j].path)) {
      if (keep(base[i].path)) diff.baseline_only.push_back(base[i].path);
      ++i;
    } else if (i >= base.size() || cand[j].path < base[i].path) {
      if (keep(cand[j].path)) diff.candidate_only.push_back(cand[j].path);
      ++j;
    } else {
      if (keep(base[i].path)) {
        // Explicit directions (unified schema) win over path inference;
        // the candidate's declaration is authoritative.
        const MetricDirection dir =
            cand[j].direction != MetricDirection::kInformational
                ? cand[j].direction
                : base[i].direction;
        diff.compared.push_back(
            {base[i].path, base[i].value, cand[j].value, dir});
      }
      ++i;
      ++j;
    }
  }
  return diff;
}

std::string render_bench_diff(const BenchDiff& diff, double tolerance) {
  std::string out;
  char line[256];
  for (const auto& c : diff.compared) {
    const double bad = c.badness();
    const char* status =
        c.direction == MetricDirection::kInformational
            ? "info"
            : (c.regressed(tolerance)
                   ? "REGRESSED"
                   : (bad != 0.0 && bad < 1.0 ? "improved" : "ok"));
    std::snprintf(line, sizeof line, "%-9s %-48s %14.6g -> %-14.6g", status,
                  c.path.c_str(), c.baseline, c.candidate);
    out += line;
    if (c.direction != MetricDirection::kInformational && bad != 0.0) {
      std::snprintf(line, sizeof line, "  (%.2fx %s)", bad,
                    bad > 1.0 ? "worse" : "better-or-equal");
      out += line;
    }
    out += '\n';
  }
  for (const auto& p : diff.baseline_only)
    out += "missing   " + p + " (present in baseline only)\n";
  for (const auto& p : diff.candidate_only)
    out += "new       " + p + " (present in candidate only)\n";
  const std::size_t n_regressed = diff.regressions(tolerance).size();
  std::snprintf(line, sizeof line,
                "%zu compared, %zu regressed (tolerance %.0f%%)\n",
                diff.compared.size(), n_regressed, tolerance * 100.0);
  out += line;
  return out;
}

}  // namespace drlhmd::obs
