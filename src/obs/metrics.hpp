// Thread-safe metrics registry: counters, gauges, and latency histograms
// with fixed buckets plus P² streaming quantile estimators (p50/p95/p99).
//
// Metrics are addressed by name + label set under the naming scheme
// `drlhmd.<layer>.<name>` (e.g. drlhmd.runtime.verdicts{verdict=benign}).
// Handles returned by the registry are stable for the registry's lifetime,
// so hot paths resolve a metric once and then pay one atomic op per update.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/tail_histogram.hpp"

namespace drlhmd::obs {

/// Label set: (key, value) pairs; order-insensitive for addressing.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Canonical metric identity, e.g. `name{k1=v1,k2=v2}` with sorted keys.
std::string metric_key(const std::string& name, const Labels& labels);

/// Monotonic counter.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value gauge (set/add; doubles via CAS so writers may race).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// P² streaming quantile estimator (Jain & Chlamtac 1985): tracks one
/// quantile with five markers, O(1) memory, no sample retention.  Exact
/// until five observations have arrived.
class P2Quantile {
 public:
  explicit P2Quantile(double quantile);

  void observe(double x);
  double estimate() const;
  std::size_t count() const { return count_; }
  /// Forget every observation (markers return to construction state).
  void reset();

 private:
  double parabolic(int i, double d) const;
  double linear(int i, double d) const;

  double q_;
  std::size_t count_ = 0;
  std::array<double, 5> heights_{};    // marker heights (quantile estimates)
  std::array<double, 5> positions_{};  // actual marker positions n_i
  std::array<double, 5> desired_{};    // desired positions n'_i
  std::array<double, 5> rates_{};      // dn'_i per observation
};

/// Fixed-bucket histogram + min/max/sum + streaming p50/p95/p99.
/// Buckets are upper bounds; an implicit +inf bucket catches the tail.
/// Non-finite observations (NaN/Inf) are dropped — counted in `dropped`,
/// never folded into min/max/sum — so one bad sample cannot poison the
/// whole series.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bucket_bounds);

  void observe(double v);
  /// Zero every bucket and statistic, keeping the bounds (and the handle).
  void reset();

  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t dropped = 0;  // non-finite observations skipped
    double sum = 0.0;
    double min = std::numeric_limits<double>::quiet_NaN();
    double max = std::numeric_limits<double>::quiet_NaN();
    double p50 = std::numeric_limits<double>::quiet_NaN();
    double p95 = std::numeric_limits<double>::quiet_NaN();
    double p99 = std::numeric_limits<double>::quiet_NaN();
    std::vector<double> bounds;          // upper bounds (without +inf)
    std::vector<std::uint64_t> buckets;  // bounds.size() + 1 counts
    double mean() const { return count ? sum / static_cast<double>(count) : 0.0; }
  };
  Snapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  std::vector<double> bounds_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t dropped_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  P2Quantile p50_{0.50}, p95_{0.95}, p99_{0.99};
};

/// Default microsecond latency buckets (1us .. 10s, roughly log-spaced).
const std::vector<double>& default_latency_buckets_us();

struct CounterSample {
  std::string name;
  Labels labels;
  std::uint64_t value = 0;
};
struct GaugeSample {
  std::string name;
  Labels labels;
  double value = 0.0;
};
struct HistogramSample {
  std::string name;
  Labels labels;
  Histogram::Snapshot data;
};
struct TailSample {
  std::string name;
  Labels labels;
  TailHistogram::Snapshot data;
};

/// Point-in-time copy of every metric, sorted by canonical key.
struct MetricsSnapshot {
  /// Microseconds since the shared telemetry epoch when the snapshot was
  /// taken, so metric dumps line up with trace spans and log records.
  double captured_us = 0.0;
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
  std::vector<TailSample> tails;

  /// {"captured_us":..,"counters":[...],"gauges":[...],"histograms":[...],
  ///  "tails":[...]}
  std::string to_json() const;
  /// Human-readable tables (counters+gauges, then histogram/tail tables).
  std::string to_table() const;

  const CounterSample* find_counter(const std::string& name,
                                    const Labels& labels = {}) const;
  const GaugeSample* find_gauge(const std::string& name,
                                const Labels& labels = {}) const;
  const HistogramSample* find_histogram(const std::string& name,
                                        const Labels& labels = {}) const;
  const TailSample* find_tail(const std::string& name,
                              const Labels& labels = {}) const;
};

/// Thread-safe registry.  Lookup takes a lock; returned references are
/// stable, so callers cache them for hot-path updates.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  /// Registers with `bucket_bounds` on first use (subsequent calls with the
  /// same identity reuse the existing histogram regardless of bounds).
  Histogram& histogram(const std::string& name,
                       std::vector<double> bucket_bounds = {},
                       const Labels& labels = {});
  /// Exact tail-latency histogram (sharded, wait-free observe).  The config
  /// applies on first registration only, like histogram bounds.
  ShardedTailHistogram& tail(const std::string& name,
                             const TailConfig& config = {},
                             const Labels& labels = {});

  MetricsSnapshot snapshot() const;
  std::size_t size() const;
  void clear();
  /// Reset every histogram and tail recorder *in place*: counters and
  /// gauges keep their values, and — unlike clear() — every handle handed
  /// out stays valid.  This is how benches discard warmup-iteration
  /// latencies without invalidating the hot paths' cached pointers.
  /// Callers must quiesce concurrent recorders first (tail shards are
  /// zeroed with relaxed stores).
  void reset_recorders();

 private:
  template <typename T>
  struct Entry {
    std::string name;
    Labels labels;
    std::unique_ptr<T> metric;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry<Counter>> counters_;
  std::map<std::string, Entry<Gauge>> gauges_;
  std::map<std::string, Entry<Histogram>> histograms_;
  std::map<std::string, Entry<ShardedTailHistogram>> tails_;
};

}  // namespace drlhmd::obs
