#include "obs/trace_export.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <map>

#include "obs/json.hpp"

namespace drlhmd::obs {

namespace {

constexpr std::uint64_t kPid = 1;  // single-process trace

void write_common(JsonWriter& w, const TraceEvent& ev) {
  w.kv("name", std::string_view(ev.name))
      .kv("cat", std::string_view(ev.category))
      .kv("pid", kPid)
      .kv("tid", static_cast<std::uint64_t>(ev.tid))
      .kv("ts", ev.start_us);
}

}  // namespace

std::string to_chrome_trace(const std::vector<TraceEvent>& events) {
  JsonWriter w;
  w.begin_object();
  w.key("traceEvents").begin_array();

  // Slice events: closed spans become "X" complete events, still-open
  // spans become unmatched "B" events (viewers render them to trace end).
  for (const auto& ev : events) {
    w.begin_object();
    write_common(w, ev);
    if (ev.open) {
      w.kv("ph", std::string_view("B"));
    } else {
      w.kv("ph", std::string_view("X")).kv("dur", ev.dur_us);
    }
    w.end_object();
  }

  // Flow events: one arrow chain per flow id, ordered by start time.  The
  // earliest member (the fork span on the issuing thread) starts the flow,
  // the latest finishes it, everything in between is a step.
  std::map<std::uint64_t, std::vector<const TraceEvent*>> flows;
  for (const auto& ev : events)
    if (ev.flow_id != 0) flows[ev.flow_id].push_back(&ev);
  for (auto& [flow_id, members] : flows) {
    if (members.size() < 2) continue;  // an arrow needs two endpoints
    std::stable_sort(members.begin(), members.end(),
                     [](const TraceEvent* a, const TraceEvent* b) {
                       return a->start_us < b->start_us;
                     });
    for (std::size_t i = 0; i < members.size(); ++i) {
      const TraceEvent& ev = *members[i];
      const char* ph = i == 0 ? "s" : (i + 1 == members.size() ? "f" : "t");
      w.begin_object()
          .kv("name", std::string_view(ev.name))
          .kv("cat", std::string_view("flow"))
          .kv("ph", std::string_view(ph))
          .kv("id", flow_id)
          .kv("pid", kPid)
          .kv("tid", static_cast<std::uint64_t>(ev.tid))
          .kv("ts", ev.start_us);
      if (ph[0] == 'f') w.kv("bp", std::string_view("e"));
      w.end_object();
    }
  }

  w.end_array();
  w.kv("displayTimeUnit", std::string_view("ms"));
  w.end_object();
  return w.str();
}

bool write_chrome_trace_file(const Tracer& tracer, const std::string& path) {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out.is_open()) return false;
  out << to_chrome_trace(tracer.events()) << '\n';
  return out.good();
}

}  // namespace drlhmd::obs
