// Prometheus text-exposition (version 0.0.4) export for MetricsSnapshot.
//
//   * counters / gauges map 1:1 (`# TYPE` + one sample per label set),
//   * legacy fixed-bucket Histograms export as prometheus `histogram`
//     (cumulative `_bucket{le="..."}` series + `_sum` + `_count`),
//   * exact TailHistograms export as prometheus `summary`
//     (`{quantile="0.99"}` series + `_sum` + `_count`) — quantiles are
//     exact-within-bucket, which is precisely what summary semantics want.
//
// Metric names are sanitized to [a-zA-Z_:][a-zA-Z0-9_:]* (dots become
// underscores), label values are escaped, and non-finite sample values are
// written with the exposition-format literals NaN / +Inf / -Inf.
//
// prom_lint() is a self-check used by tests and the ctest gate: it parses
// an exposition document line-by-line and rejects malformed names, label
// syntax errors, unparsable values, duplicate or misplaced `# TYPE` lines.
#pragma once

#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace drlhmd::obs {

/// Sanitize a metric or label name for the exposition format.
std::string prom_name(std::string_view raw);

/// Render the snapshot as one exposition-format document.
std::string to_prometheus(const MetricsSnapshot& snapshot);

/// True when `text` is a well-formed exposition document.  On failure,
/// `*error` (when non-null) receives "line N: reason".
bool prom_lint(std::string_view text, std::string* error = nullptr);

}  // namespace drlhmd::obs
