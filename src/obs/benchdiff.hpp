// Benchmark regression comparison: load two BENCH_*.json documents,
// flatten them to dotted metric paths, and flag candidate metrics that got
// worse than the baseline beyond a noise tolerance.
//
// The flattener understands both the unified drlhmd-bench/1 schema
// (objects with "name"/"value"/"higher_is_better" members become one
// metric with an explicit direction) and free-form JSON (arrays key their
// elements by a "model"/"name"/"bench"/"label"/"threads" member when one
// exists, numbers become metrics at their dotted path).  For metrics with
// no explicit direction, better-ness is inferred from the path: latency-
// and duration-like names are lower-is-better, throughput/speedup/score
// names are higher-is-better, anything else is informational (compared and
// reported, never a regression).
#pragma once

#include <string>
#include <vector>

#include "obs/json.hpp"

namespace drlhmd::obs {

/// Better-ness of a metric.
enum class MetricDirection : int {
  kLowerIsBetter = -1,
  kInformational = 0,
  kHigherIsBetter = 1,
};

/// Direction inferred from a dotted metric path (see file comment).
MetricDirection direction_for_path(const std::string& path);

/// One numeric metric extracted from a bench document.
struct BenchMetric {
  std::string path;
  double value = 0.0;
  MetricDirection direction = MetricDirection::kInformational;
};

/// Flatten a parsed bench document to its metrics, sorted by path.
std::vector<BenchMetric> flatten_bench(const JsonValue& doc);

/// One baseline/candidate pair.
struct MetricComparison {
  std::string path;
  double baseline = 0.0;
  double candidate = 0.0;
  MetricDirection direction = MetricDirection::kInformational;

  /// How much worse the candidate is, as a ratio >= 0 (1.0 = unchanged,
  /// 2.0 = twice as bad).  0 when not comparable (informational metric, or
  /// non-positive values that cannot form a ratio).
  double badness() const;
  bool regressed(double tolerance) const {
    return badness() > 1.0 + tolerance;
  }
};

/// Full diff between two bench documents.
struct BenchDiff {
  std::vector<MetricComparison> compared;
  std::vector<std::string> baseline_only;   // paths missing from candidate
  std::vector<std::string> candidate_only;  // paths new in candidate

  std::vector<MetricComparison> regressions(double tolerance) const;
};

/// Compare two parsed documents.  When `metric_filters` is non-empty, only
/// paths containing at least one filter substring are compared.
BenchDiff bench_diff(const JsonValue& baseline, const JsonValue& candidate,
                     const std::vector<std::string>& metric_filters = {});

/// Human-readable report (one line per metric, regressions flagged).
std::string render_bench_diff(const BenchDiff& diff, double tolerance);

}  // namespace drlhmd::obs
