#include "obs/telemetry.hpp"

namespace drlhmd::obs {

std::atomic<bool>& Telemetry::enabled_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}

MetricsRegistry& Telemetry::metrics() {
  static MetricsRegistry registry;
  return registry;
}

Tracer& Telemetry::tracer() {
  static Tracer tracer;
  return tracer;
}

void Telemetry::reset() {
  metrics().clear();
  tracer().clear();
}

}  // namespace drlhmd::obs
