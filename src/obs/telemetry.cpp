#include "obs/telemetry.hpp"

#include <cstdlib>
#include <string>

#include "obs/clock.hpp"
#include "obs/trace_export.hpp"
#include "util/arena.hpp"
#include "util/parallel.hpp"

namespace drlhmd::obs {
namespace {

/// Bridges util's parallel regions into the telemetry layer: every labeled
/// top-level region bumps drlhmd.parallel.* metrics and opens a span
/// ("parallel.<label>", category "parallel") for the duration of the
/// region; each chunk that runs under it records into the exact
/// drlhmd.parallel.chunk_us tail histogram and appends a complete trace
/// event carrying the region's flow id, so exported traces draw fork/join
/// arrows from the region span to its chunks.  Installed once, the first
/// time telemetry is enabled; each callback checks the enabled flag so
/// disabled runs pay one branch per region.
class ParallelTelemetryBridge final : public util::ParallelObserver {
 public:
  struct RegionToken {
    Span span;
    std::string label;
    ShardedTailHistogram* chunk_tail = nullptr;
    std::uint64_t flow_id = 0;
  };

  void* region_begin(const char* label, std::size_t n_chunks,
                     std::size_t n_threads) override {
    if (!Telemetry::enabled()) return nullptr;
    MetricsRegistry& reg = Telemetry::metrics();
    const Labels labels = {{"label", label}};
    reg.counter("drlhmd.parallel.regions", labels).inc();
    reg.counter("drlhmd.parallel.chunks", labels).inc(n_chunks);
    reg.gauge("drlhmd.parallel.pool_size")
        .set(static_cast<double>(n_threads));
    reg.gauge("drlhmd.parallel.region_chunks", labels)
        .set(static_cast<double>(n_chunks));

    Tracer& tracer = Telemetry::tracer();
    const std::uint64_t flow = tracer.next_flow_id();
    auto* token = new RegionToken;
    token->label = label;
    token->chunk_tail = &reg.tail("drlhmd.parallel.chunk_us",
                                  default_latency_tail_config(), labels);
    token->flow_id = flow;
    token->span =
        tracer.span(std::string("parallel.") + label, "parallel", flow);
    return token;
  }

  void chunk_done(void* token, std::size_t chunk_index,
                  double duration_us) override {
    auto* region = static_cast<RegionToken*>(token);
    region->chunk_tail->observe(duration_us);
    const double end_us = now_us_since_epoch();
    Telemetry::tracer().complete_event(
        region->label + ".chunk" + std::to_string(chunk_index), "parallel",
        end_us - duration_us, duration_us, region->flow_id);
  }

  void region_end(void* token) override {
    delete static_cast<RegionToken*>(token);  // closes the span
  }
};

/// DRLHMD_TRACE_FILE support: enables telemetry at static-init time and
/// exports the global tracer as Chrome trace JSON at process exit.  The
/// tracer/registry singletons are intentionally leaked (see below), so the
/// export in this destructor can never use a destroyed object.
class EnvTraceExporter {
 public:
  EnvTraceExporter() {
    if (const char* path = std::getenv("DRLHMD_TRACE_FILE")) {
      if (path[0] != '\0') {
        path_ = path;
        Telemetry::set_enabled(true);
      }
    }
  }
  ~EnvTraceExporter() {
    if (!path_.empty()) write_chrome_trace_file(Telemetry::tracer(), path_);
  }

 private:
  std::string path_;
};

EnvTraceExporter g_env_trace_exporter;

}  // namespace

std::atomic<bool>& Telemetry::enabled_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}

// Deliberately leaked: EnvTraceExporter (and any other static-destruction
// user) must be able to read the tracer after main() returns, regardless
// of TU destruction order.
MetricsRegistry& Telemetry::metrics() {
  static MetricsRegistry* registry = new MetricsRegistry;
  return *registry;
}

Tracer& Telemetry::tracer() {
  static Tracer* tracer = new Tracer;
  return *tracer;
}

void Telemetry::install_parallel_bridge() {
  static ParallelTelemetryBridge bridge;
  util::set_parallel_observer(&bridge);
}

void Telemetry::reset() {
  metrics().clear();
  tracer().clear();
}

void Telemetry::publish_arena_gauges() {
  const util::ArenaStats stats = util::arena_stats();
  MetricsRegistry& reg = metrics();
  reg.gauge("drlhmd.arena.arenas").set(static_cast<double>(stats.arenas));
  reg.gauge("drlhmd.arena.capacity_bytes")
      .set(static_cast<double>(stats.capacity_bytes));
  reg.gauge("drlhmd.arena.high_water_bytes")
      .set(static_cast<double>(stats.high_water_bytes));
  reg.gauge("drlhmd.arena.scope_reuses")
      .set(static_cast<double>(stats.scope_reuses));
  reg.gauge("drlhmd.arena.chunk_allocations")
      .set(static_cast<double>(stats.chunk_allocations));
}

}  // namespace drlhmd::obs
