#include "obs/telemetry.hpp"

#include "util/parallel.hpp"

namespace drlhmd::obs {
namespace {

/// Bridges util's parallel regions into the telemetry layer: every labeled
/// top-level region bumps drlhmd.parallel.* metrics and opens a span
/// ("parallel.<label>") for the duration of the region.  Installed once,
/// the first time telemetry is enabled; each callback checks the enabled
/// flag so disabled runs pay one branch per region.
class ParallelTelemetryBridge final : public util::ParallelObserver {
 public:
  void* region_begin(const char* label, std::size_t n_chunks,
                     std::size_t n_threads) override {
    if (!Telemetry::enabled()) return nullptr;
    MetricsRegistry& reg = Telemetry::metrics();
    const Labels labels = {{"label", label}};
    reg.counter("drlhmd.parallel.regions", labels).inc();
    reg.counter("drlhmd.parallel.chunks", labels).inc(n_chunks);
    reg.gauge("drlhmd.parallel.pool_size")
        .set(static_cast<double>(n_threads));
    reg.gauge("drlhmd.parallel.region_chunks", labels)
        .set(static_cast<double>(n_chunks));
    return new Span(Telemetry::tracer().span(std::string("parallel.") + label));
  }

  void region_end(void* token) override {
    delete static_cast<Span*>(token);  // closes the span
  }
};

}  // namespace

std::atomic<bool>& Telemetry::enabled_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}

MetricsRegistry& Telemetry::metrics() {
  static MetricsRegistry registry;
  return registry;
}

Tracer& Telemetry::tracer() {
  static Tracer tracer;
  return tracer;
}

void Telemetry::install_parallel_bridge() {
  static ParallelTelemetryBridge bridge;
  util::set_parallel_observer(&bridge);
}

void Telemetry::reset() {
  metrics().clear();
  tracer().clear();
}

}  // namespace drlhmd::obs
