#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "obs/clock.hpp"
#include "obs/json.hpp"
#include "util/table.hpp"

namespace drlhmd::obs {

std::string metric_key(const std::string& name, const Labels& labels) {
  if (labels.empty()) return name;
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string key = name;
  key += '{';
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i) key += ',';
    key += sorted[i].first;
    key += '=';
    key += sorted[i].second;
  }
  key += '}';
  return key;
}

// ---------------------------------------------------------------------------
// P² quantile estimator.

P2Quantile::P2Quantile(double quantile) : q_(quantile) {
  desired_ = {1.0, 1.0 + 2.0 * q_, 1.0 + 4.0 * q_, 3.0 + 2.0 * q_, 5.0};
  rates_ = {0.0, q_ / 2.0, q_, (1.0 + q_) / 2.0, 1.0};
}

void P2Quantile::reset() {
  count_ = 0;
  heights_ = {};
  positions_ = {};
  desired_ = {1.0, 1.0 + 2.0 * q_, 1.0 + 4.0 * q_, 3.0 + 2.0 * q_, 5.0};
}

double P2Quantile::parabolic(int i, double d) const {
  const double np = positions_[static_cast<std::size_t>(i + 1)];
  const double nm = positions_[static_cast<std::size_t>(i - 1)];
  const double n = positions_[static_cast<std::size_t>(i)];
  const double hp = heights_[static_cast<std::size_t>(i + 1)];
  const double hm = heights_[static_cast<std::size_t>(i - 1)];
  const double h = heights_[static_cast<std::size_t>(i)];
  return h + d / (np - nm) *
                 ((n - nm + d) * (hp - h) / (np - n) +
                  (np - n - d) * (h - hm) / (n - nm));
}

double P2Quantile::linear(int i, double d) const {
  const auto j = static_cast<std::size_t>(i + static_cast<int>(d));
  const auto k = static_cast<std::size_t>(i);
  return heights_[k] + d * (heights_[j] - heights_[k]) /
                           (positions_[j] - positions_[k]);
}

void P2Quantile::observe(double x) {
  if (count_ < 5) {
    heights_[count_++] = x;
    if (count_ == 5) {
      std::sort(heights_.begin(), heights_.end());
      for (std::size_t i = 0; i < 5; ++i)
        positions_[i] = static_cast<double>(i + 1);
    }
    return;
  }

  // 1. Locate the cell and update the extreme markers.
  std::size_t k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }

  // 2./3. Shift marker positions and the desired positions.
  for (std::size_t i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (std::size_t i = 0; i < 5; ++i) desired_[i] += rates_[i];
  ++count_;

  // 4. Nudge the three middle markers toward their desired positions.
  for (int i = 1; i <= 3; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    const double d = desired_[ui] - positions_[ui];
    if ((d >= 1.0 && positions_[ui + 1] - positions_[ui] > 1.0) ||
        (d <= -1.0 && positions_[ui - 1] - positions_[ui] < -1.0)) {
      const double step = d >= 0.0 ? 1.0 : -1.0;
      const double candidate = parabolic(i, step);
      if (heights_[ui - 1] < candidate && candidate < heights_[ui + 1]) {
        heights_[ui] = candidate;
      } else {
        heights_[ui] = linear(i, step);
      }
      positions_[ui] += step;
    }
  }
}

double P2Quantile::estimate() const {
  if (count_ == 0) return std::numeric_limits<double>::quiet_NaN();
  if (count_ < 5) {
    // Exact small-sample quantile over the retained observations.
    std::array<double, 5> sorted = heights_;
    std::sort(sorted.begin(), sorted.begin() + static_cast<long>(count_));
    const auto rank = static_cast<std::size_t>(
        q_ * static_cast<double>(count_ - 1) + 0.5);
    return sorted[std::min(rank, count_ - 1)];
  }
  return heights_[2];
}

// ---------------------------------------------------------------------------
// Histogram.

const std::vector<double>& default_latency_buckets_us() {
  static const std::vector<double> kBuckets = {
      1.0,    2.0,    5.0,    10.0,    20.0,    50.0,    100.0,   200.0,
      500.0,  1e3,    2e3,    5e3,     1e4,     2e4,     5e4,     1e5,
      2e5,    5e5,    1e6,    1e7};
  return kBuckets;
}

Histogram::Histogram(std::vector<double> bucket_bounds)
    : bounds_(std::move(bucket_bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_.assign(bounds_.size() + 1, 0);  // +1: the implicit +inf bucket
}

void Histogram::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  buckets_.assign(bounds_.size() + 1, 0);
  count_ = 0;
  dropped_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
  p50_.reset();
  p95_.reset();
  p99_.reset();
}

void Histogram::observe(double v) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (!std::isfinite(v)) {
    // NaN would poison min/max/sum (and NaN comparisons would misplace the
    // bucket); count the loss instead of absorbing it.
    ++dropped_;
    return;
  }
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++buckets_[static_cast<std::size_t>(it - bounds_.begin())];
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  p50_.observe(v);
  p95_.observe(v);
  p99_.observe(v);
}

Histogram::Snapshot Histogram::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.count = count_;
  snap.dropped = dropped_;
  snap.sum = sum_;
  if (count_ > 0) {
    snap.min = min_;
    snap.max = max_;
    // The three P² estimators track their markers independently, so the
    // estimates can cross by tiny amounts at small sample counts; clamp to
    // keep the reported quantiles monotone.
    snap.p50 = p50_.estimate();
    snap.p95 = std::max(snap.p50, p95_.estimate());
    snap.p99 = std::max(snap.p95, p99_.estimate());
  }
  snap.bounds = bounds_;
  snap.buckets = buckets_;
  return snap;
}

// ---------------------------------------------------------------------------
// Registry.

Counter& MetricsRegistry::counter(const std::string& name, const Labels& labels) {
  const std::string key = metric_key(name, labels);
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(key);
  if (it == counters_.end()) {
    it = counters_.emplace(key, Entry<Counter>{name, labels,
                                               std::make_unique<Counter>()})
             .first;
  }
  return *it->second.metric;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels) {
  const std::string key = metric_key(name, labels);
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(key);
  if (it == gauges_.end()) {
    it = gauges_.emplace(key, Entry<Gauge>{name, labels, std::make_unique<Gauge>()})
             .first;
  }
  return *it->second.metric;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bucket_bounds,
                                      const Labels& labels) {
  const std::string key = metric_key(name, labels);
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(key);
  if (it == histograms_.end()) {
    if (bucket_bounds.empty()) bucket_bounds = default_latency_buckets_us();
    it = histograms_
             .emplace(key, Entry<Histogram>{name, labels,
                                            std::make_unique<Histogram>(
                                                std::move(bucket_bounds))})
             .first;
  }
  return *it->second.metric;
}

ShardedTailHistogram& MetricsRegistry::tail(const std::string& name,
                                            const TailConfig& config,
                                            const Labels& labels) {
  const std::string key = metric_key(name, labels);
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = tails_.find(key);
  if (it == tails_.end()) {
    it = tails_
             .emplace(key, Entry<ShardedTailHistogram>{
                               name, labels,
                               std::make_unique<ShardedTailHistogram>(config)})
             .first;
  }
  return *it->second.metric;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.captured_us = now_us_since_epoch();
  snap.counters.reserve(counters_.size());
  for (const auto& [key, entry] : counters_)
    snap.counters.push_back({entry.name, entry.labels, entry.metric->value()});
  snap.gauges.reserve(gauges_.size());
  for (const auto& [key, entry] : gauges_)
    snap.gauges.push_back({entry.name, entry.labels, entry.metric->value()});
  snap.histograms.reserve(histograms_.size());
  for (const auto& [key, entry] : histograms_)
    snap.histograms.push_back({entry.name, entry.labels, entry.metric->snapshot()});
  snap.tails.reserve(tails_.size());
  for (const auto& [key, entry] : tails_)
    snap.tails.push_back({entry.name, entry.labels, entry.metric->snapshot()});
  return snap;
}

std::size_t MetricsRegistry::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size() +
         tails_.size();
}

void MetricsRegistry::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  tails_.clear();
}

void MetricsRegistry::reset_recorders() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, entry] : histograms_) entry.metric->reset();
  for (auto& [key, entry] : tails_) entry.metric->reset();
}

// ---------------------------------------------------------------------------
// Snapshot rendering.

namespace {

void write_labels(JsonWriter& w, const Labels& labels) {
  w.key("labels").begin_object();
  for (const auto& [k, v] : labels) w.kv(k, std::string_view(v));
  w.end_object();
}

std::string labels_text(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) out += ',';
    out += labels[i].first + "=" + labels[i].second;
  }
  out += '}';
  return out;
}

template <typename Sample>
const Sample* find_sample(const std::vector<Sample>& samples,
                          const std::string& name, const Labels& labels) {
  const std::string key = metric_key(name, labels);
  for (const auto& s : samples)
    if (metric_key(s.name, s.labels) == key) return &s;
  return nullptr;
}

}  // namespace

std::string MetricsSnapshot::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.kv("captured_us", captured_us);
  w.key("counters").begin_array();
  for (const auto& c : counters) {
    w.begin_object().kv("name", std::string_view(c.name));
    write_labels(w, c.labels);
    w.kv("value", c.value).end_object();
  }
  w.end_array();
  w.key("gauges").begin_array();
  for (const auto& g : gauges) {
    w.begin_object().kv("name", std::string_view(g.name));
    write_labels(w, g.labels);
    w.kv("value", g.value).end_object();
  }
  w.end_array();
  w.key("histograms").begin_array();
  for (const auto& h : histograms) {
    w.begin_object().kv("name", std::string_view(h.name));
    write_labels(w, h.labels);
    w.kv("count", h.data.count)
        .kv("dropped", h.data.dropped)
        .kv("sum", h.data.sum)
        .kv("min", h.data.min)
        .kv("max", h.data.max)
        .kv("mean", h.data.mean())
        .kv("p50", h.data.p50)
        .kv("p95", h.data.p95)
        .kv("p99", h.data.p99);
    w.key("buckets").begin_array();
    for (std::size_t b = 0; b < h.data.buckets.size(); ++b) {
      w.begin_object();
      w.key("le");
      if (b < h.data.bounds.size()) {
        w.value(h.data.bounds[b]);
      } else {
        w.value(std::string_view("+inf"));
      }
      w.kv("count", h.data.buckets[b]).end_object();
    }
    w.end_array().end_object();
  }
  w.end_array();
  w.key("tails").begin_array();
  for (const auto& t : tails) {
    w.begin_object().kv("name", std::string_view(t.name));
    write_labels(w, t.labels);
    w.kv("count", t.data.count)
        .kv("dropped", t.data.dropped)
        .kv("saturated", t.data.saturated)
        .kv("sum", t.data.sum)
        .kv("min", t.data.min)
        .kv("max", t.data.max)
        .kv("mean", t.data.mean())
        .kv("p50", t.data.p50)
        .kv("p90", t.data.p90)
        .kv("p99", t.data.p99)
        .kv("p999", t.data.p999)
        .kv("p9999", t.data.p9999)
        .end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string MetricsSnapshot::to_table() const {
  std::string out;
  if (!counters.empty() || !gauges.empty()) {
    util::Table table({"metric", "type", "value"});
    for (const auto& c : counters)
      table.add_row({c.name + labels_text(c.labels), "counter",
                     std::to_string(c.value)});
    for (const auto& g : gauges)
      table.add_row({g.name + labels_text(g.labels), "gauge",
                     util::Table::fmt(g.value, 4)});
    out += table.to_string();
  }
  if (!histograms.empty()) {
    util::Table table(
        {"histogram", "count", "mean", "p50", "p95", "p99", "max"});
    for (const auto& h : histograms)
      table.add_row({h.name + labels_text(h.labels),
                     std::to_string(h.data.count),
                     util::Table::fmt(h.data.mean(), 2),
                     util::Table::fmt(h.data.p50, 2),
                     util::Table::fmt(h.data.p95, 2),
                     util::Table::fmt(h.data.p99, 2),
                     util::Table::fmt(h.data.max, 2)});
    out += table.to_string();
  }
  if (!tails.empty()) {
    util::Table table(
        {"tail", "count", "mean", "p50", "p90", "p99", "p999", "max"});
    for (const auto& t : tails)
      table.add_row({t.name + labels_text(t.labels),
                     std::to_string(t.data.count),
                     util::Table::fmt(t.data.mean(), 2),
                     util::Table::fmt(t.data.p50, 2),
                     util::Table::fmt(t.data.p90, 2),
                     util::Table::fmt(t.data.p99, 2),
                     util::Table::fmt(t.data.p999, 2),
                     util::Table::fmt(t.data.max, 2)});
    out += table.to_string();
  }
  return out;
}

const CounterSample* MetricsSnapshot::find_counter(const std::string& name,
                                                   const Labels& labels) const {
  return find_sample(counters, name, labels);
}
const GaugeSample* MetricsSnapshot::find_gauge(const std::string& name,
                                               const Labels& labels) const {
  return find_sample(gauges, name, labels);
}
const HistogramSample* MetricsSnapshot::find_histogram(
    const std::string& name, const Labels& labels) const {
  return find_sample(histograms, name, labels);
}
const TailSample* MetricsSnapshot::find_tail(const std::string& name,
                                             const Labels& labels) const {
  return find_sample(tails, name, labels);
}

}  // namespace drlhmd::obs
