// Exact tail-latency histograms (HDR-style log-linear bucketing).
//
// The PR-1 obs::Histogram takes a mutex per observe() and reports
// P²-*estimated* quantiles — good enough for coarse pipeline timing, not
// for the p99/p999 serving numbers ROADMAP item 1 wants.  TailHistogram
// fixes both properties:
//
//   * Log-linear buckets: values are mapped to integer ticks and bucketed
//     with `precision_bits` of linear resolution per power-of-two range
//     (default 7 bits => every bucket is within 2^-7 ~ 0.8% of its value).
//     Quantiles walk the counts array, so p50..p9999 are exact up to one
//     bucket's width — no estimator drift, no sample retention.
//   * merge() is lossless: two histograms with the same layout add
//     bucket-by-bucket, so per-thread/per-shard recordings aggregate into
//     exactly the histogram a single serial recorder would have produced.
//     Sums accumulate in integer ticks, so merged totals are independent
//     of merge order (bitwise-deterministic snapshots at any thread count).
//
// TailHistogram itself is single-writer (or externally synchronized).
// ShardedTailHistogram is the hot-path concurrent recorder: per-thread
// shards of relaxed atomic counters, so observe() is one wait-free array
// increment plus a handful of relaxed atomic adds; shards are aggregated
// only at snapshot time.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

namespace drlhmd::obs {

/// Value range + resolution of a tail histogram.  Values are recorded in
/// "units" (the obs layer records microseconds) and quantized to integer
/// ticks at `ticks_per_unit` resolution (default: nanosecond ticks on
/// microsecond values).
struct TailConfig {
  double max_value = 1e8;       // largest trackable value, in units (100 s)
  int precision_bits = 7;       // linear sub-bucket bits per octave
  double ticks_per_unit = 1e3;  // quantization (1000 => ns ticks on us)
};

/// Shared bucket geometry: value->index and index->value maps used by both
/// the plain histogram and the sharded recorder's atomic shards.
class TailLayout {
 public:
  explicit TailLayout(const TailConfig& config);

  std::size_t num_counts() const { return num_counts_; }
  std::uint64_t max_ticks() const { return max_ticks_; }
  double ticks_per_unit() const { return ticks_per_unit_; }
  int precision_bits() const { return precision_bits_; }

  bool operator==(const TailLayout& other) const {
    return precision_bits_ == other.precision_bits_ &&
           max_ticks_ == other.max_ticks_ &&
           ticks_per_unit_ == other.ticks_per_unit_;
  }

  /// Quantize a value in units to ticks (caller has already rejected
  /// non-finite and negative values).  Saturating: ticks above the range
  /// land in the top bucket.
  std::uint64_t ticks_for(double value) const;
  /// Counts-array slot for a tick value (always in range).
  std::size_t index_for(std::uint64_t ticks) const;
  /// Smallest / largest tick value mapping to slot `index`.
  std::uint64_t lowest_equivalent(std::size_t index) const;
  std::uint64_t highest_equivalent(std::size_t index) const;
  /// Largest value (in units) representable without saturating.
  double max_value() const {
    return static_cast<double>(max_ticks_) / ticks_per_unit_;
  }

 private:
  int precision_bits_;
  int sub_half_shift_;              // == precision_bits
  std::uint64_t sub_count_;         // 2^(precision_bits+1)
  std::uint64_t sub_half_count_;    // 2^precision_bits
  std::uint64_t sub_mask_;          // sub_count - 1
  std::uint64_t max_ticks_;         // highest trackable tick (inclusive)
  double ticks_per_unit_;
  std::size_t num_counts_;
};

/// Plain (single-writer) log-linear histogram.
class TailHistogram {
 public:
  explicit TailHistogram(const TailConfig& config = {});

  /// Record one value (in units).  NaN and negative values are dropped
  /// (counted, never poisoning min/max/sum); values above the range
  /// saturate into the top bucket and bump the saturated counter.
  void observe(double value);

  /// Exact-within-bucket quantile (q in [0,1]); NaN when empty.
  double quantile(double q) const;

  std::uint64_t count() const { return count_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t saturated() const { return saturated_; }
  /// Sum of recorded values in units (accumulated in integer ticks, so it
  /// is independent of observation order).
  double sum() const;
  double min() const;  // NaN when empty
  double max() const;  // NaN when empty

  /// Lossless merge; throws std::invalid_argument on layout mismatch.
  void merge(const TailHistogram& other);

  /// Forget every observation, keeping the layout.
  void reset();

  const TailLayout& layout() const { return layout_; }
  const std::vector<std::uint64_t>& counts() const { return counts_; }

  /// One non-empty bucket: value range [lo, hi] in units + its count.
  struct Bucket {
    double lo = 0.0;
    double hi = 0.0;
    std::uint64_t count = 0;
  };

  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t dropped = 0;
    std::uint64_t saturated = 0;
    double sum = 0.0;
    double min = std::numeric_limits<double>::quiet_NaN();
    double max = std::numeric_limits<double>::quiet_NaN();
    double p50 = std::numeric_limits<double>::quiet_NaN();
    double p90 = std::numeric_limits<double>::quiet_NaN();
    double p99 = std::numeric_limits<double>::quiet_NaN();
    double p999 = std::numeric_limits<double>::quiet_NaN();
    double p9999 = std::numeric_limits<double>::quiet_NaN();
    std::vector<Bucket> buckets;  // non-empty buckets, ascending
    double mean() const {
      return count ? sum / static_cast<double>(count) : 0.0;
    }
    double quantile(double q) const;  // from the bucket list
  };
  Snapshot snapshot() const;

  // Raw-tick internals shared with the sharded recorder's aggregation.
  void add_ticks(std::size_t index, std::uint64_t n) {
    counts_[index] += n;
    count_ += n;
  }
  void fold_stats(std::uint64_t dropped, std::uint64_t saturated,
                  std::uint64_t sum_ticks, std::uint64_t min_ticks,
                  std::uint64_t max_ticks);

 private:
  TailLayout layout_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t saturated_ = 0;
  std::uint64_t sum_ticks_ = 0;
  std::uint64_t min_ticks_ = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_ticks_seen_ = 0;
};

/// Concurrent recorder: up to kShardSlots shards, one per (dense) thread
/// id, allocated lazily on a thread's first observe.  The hot path is a
/// relaxed fetch_add on the bucket slot plus relaxed adds for count/sum —
/// wait-free after the shard exists, and never a lock or a shared cache
/// line between threads with distinct slots.
class ShardedTailHistogram {
 public:
  static constexpr std::size_t kShardSlots = 64;

  explicit ShardedTailHistogram(const TailConfig& config = {});
  ~ShardedTailHistogram();
  ShardedTailHistogram(const ShardedTailHistogram&) = delete;
  ShardedTailHistogram& operator=(const ShardedTailHistogram&) = delete;

  void observe(double value);

  /// Merge every shard into one TailHistogram (the exact histogram a
  /// serial recorder would have produced).
  TailHistogram aggregate() const;

  /// Zero every allocated shard in place (shards stay allocated, so no
  /// recording thread ever re-pays the first-observe allocation).  The
  /// stores are relaxed: callers must quiesce concurrent observers first,
  /// exactly like reading an exact snapshot.
  void reset();
  TailHistogram::Snapshot snapshot() const { return aggregate().snapshot(); }

  const TailLayout& layout() const { return layout_; }

 private:
  struct Shard;
  Shard& shard_for_current_thread();

  TailLayout layout_;
  std::atomic<Shard*> shards_[kShardSlots];
};

/// Default config for latency-in-microseconds metrics: ns ticks, 100 s
/// ceiling, ~0.8% worst-case bucket error.
const TailConfig& default_latency_tail_config();

}  // namespace drlhmd::obs
