#include "obs/trace.hpp"

#include <algorithm>

#include "obs/clock.hpp"
#include "obs/json.hpp"
#include "util/table.hpp"

namespace drlhmd::obs {

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    end();
    tracer_ = other.tracer_;
    index_ = other.index_;
    other.tracer_ = nullptr;
  }
  return *this;
}

void Span::end() {
  if (tracer_ == nullptr) return;
  tracer_->close(index_);
  tracer_ = nullptr;
}

// All tracers share the process-wide telemetry epoch (obs/clock.hpp), so
// span timestamps line up with log records and metrics snapshots.
Tracer::Tracer() { telemetry_epoch(); }

double Tracer::now_us() const { return now_us_since_epoch(); }

Span Tracer::span(std::string name, std::string category,
                  std::uint64_t flow_id) {
  const std::lock_guard<std::mutex> lock(mu_);
  TraceEvent event;
  event.name = std::move(name);
  event.category = std::move(category);
  event.parent = stack_.empty() ? TraceEvent::kNoParent : stack_.back();
  event.depth = static_cast<int>(stack_.size());
  event.tid = current_thread_id();
  event.flow_id = flow_id;
  event.start_us = now_us();
  const std::size_t index = events_.size();
  events_.push_back(std::move(event));
  stack_.push_back(index);
  return Span(this, index);
}

void Tracer::complete_event(std::string name, std::string category,
                            double start_us, double dur_us,
                            std::uint64_t flow_id) {
  const std::lock_guard<std::mutex> lock(mu_);
  TraceEvent event;
  event.name = std::move(name);
  event.category = std::move(category);
  event.parent = TraceEvent::kNoParent;
  event.depth = 0;
  event.tid = current_thread_id();
  event.flow_id = flow_id;
  event.start_us = start_us;
  event.dur_us = dur_us;
  event.open = false;
  events_.push_back(std::move(event));
}

std::uint64_t Tracer::next_flow_id() {
  return flow_ids_.fetch_add(1, std::memory_order_relaxed) + 1;
}

void Tracer::close(std::size_t index) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (index >= events_.size() || !events_[index].open) return;
  events_[index].dur_us = now_us() - events_[index].start_us;
  events_[index].open = false;
  // Pop the open stack down through this span; children destroyed out of
  // order (e.g. via move-assignment) are force-closed at the same instant.
  const auto it = std::find(stack_.begin(), stack_.end(), index);
  if (it != stack_.end()) {
    for (auto child = it + 1; child != stack_.end(); ++child) {
      TraceEvent& ev = events_[*child];
      if (ev.open) {
        ev.dur_us = now_us() - ev.start_us;
        ev.open = false;
      }
    }
    stack_.erase(it, stack_.end());
  }
}

std::vector<TraceEvent> Tracer::events() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::size_t Tracer::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void Tracer::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  stack_.clear();
}

std::string Tracer::to_json() const {
  const std::vector<TraceEvent> snap = events();
  JsonWriter w;
  w.begin_object();
  w.key("spans").begin_array();
  for (const auto& ev : snap) {
    w.begin_object()
        .kv("name", std::string_view(ev.name))
        .kv("cat", std::string_view(ev.category))
        .kv("depth", static_cast<std::int64_t>(ev.depth))
        .kv("tid", static_cast<std::uint64_t>(ev.tid))
        .kv("start_us", ev.start_us)
        .kv("dur_us", ev.dur_us)
        .kv("open", ev.open);
    if (ev.flow_id != 0)
      w.kv("flow_id", static_cast<std::uint64_t>(ev.flow_id));
    w.key("parent");
    if (ev.parent == TraceEvent::kNoParent) {
      w.null();
    } else {
      w.value(static_cast<std::uint64_t>(ev.parent));
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string Tracer::to_table() const {
  const std::vector<TraceEvent> snap = events();
  util::Table table({"span", "start (ms)", "duration (ms)"});
  for (const auto& ev : snap) {
    std::string name(static_cast<std::size_t>(ev.depth) * 2, ' ');
    name += ev.name;
    table.add_row({std::move(name), util::Table::fmt(ev.start_us / 1e3, 3),
                   ev.open ? "(open)" : util::Table::fmt(ev.dur_us / 1e3, 3)});
  }
  return table.to_string();
}

}  // namespace drlhmd::obs
