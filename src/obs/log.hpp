// Leveled structured logging with pluggable sinks.
//
//   DRLHMD_LOG(Info) << "retrain #" << n << " quarantine=" << q;
//
// The macro evaluates its stream expression only when the level is enabled,
// so disabled log statements cost one relaxed atomic load.  Records fan out
// to any combination of: stderr text sink, a machine-readable JSONL file
// sink ({"ts_ms":..,"level":..,"file":..,"line":..,"msg":..} per line), and
// a user callback (for tests or custom shipping).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>

namespace drlhmd::obs {

enum class LogLevel : int {
  kTrace = 0,
  kDebug,
  kInfo,
  kWarn,
  kError,
  kOff,
};

const char* level_name(LogLevel level);

struct LogRecord {
  LogLevel level = LogLevel::kInfo;
  double ts_ms = 0.0;  // milliseconds since the shared telemetry epoch
  const char* file = "";
  int line = 0;
  std::string message;

  /// One JSONL line (no trailing newline).
  std::string to_jsonl() const;
};

/// Process-wide logger singleton.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  LogLevel level() const {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  bool enabled(LogLevel level) const {
    return static_cast<int>(level) >= level_.load(std::memory_order_relaxed) &&
           level != LogLevel::kOff;
  }

  /// Text sink on stderr ("[level] file:line message"); on by default.
  void set_stderr_sink(bool on) { stderr_sink_.store(on, std::memory_order_relaxed); }

  /// JSONL sink; empty path closes it.  Returns false if the file cannot
  /// be opened.
  bool open_jsonl(const std::string& path);
  void close_jsonl();

  /// Callback sink (invoked under the logger lock); nullptr clears.
  void set_callback(std::function<void(const LogRecord&)> callback);

  /// Dispatch a completed record to every active sink.
  void submit(LogRecord record);

  /// Restore defaults (level kWarn, stderr on, no jsonl, no callback).
  void reset();

 private:
  Logger();

  std::atomic<int> level_;
  std::atomic<bool> stderr_sink_{true};
  std::mutex mu_;  // guards the sinks below
  std::ofstream jsonl_;
  std::function<void(const LogRecord&)> callback_;
};

/// Temporary that accumulates one message and submits it on destruction.
class LogStream {
 public:
  LogStream(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  ~LogStream();

  template <typename T>
  LogStream& operator<<(T&& v) {
    stream_ << std::forward<T>(v);
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace drlhmd::obs

// Dangling-else-safe: expands to an `if/else` whose else-branch builds the
// LogStream, so the whole statement vanishes when the level is disabled.
#define DRLHMD_LOG(severity)                                      \
  if (!::drlhmd::obs::Logger::instance().enabled(                 \
          ::drlhmd::obs::LogLevel::k##severity))                  \
    ;                                                             \
  else                                                            \
    ::drlhmd::obs::LogStream(::drlhmd::obs::LogLevel::k##severity, \
                             __FILE__, __LINE__)
