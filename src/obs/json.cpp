#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace drlhmd::obs {

namespace {

[[noreturn]] void misuse(const char* what) {
  throw std::logic_error(std::string("JsonWriter: ") + what);
}

}  // namespace

std::string JsonWriter::escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::before_value() {
  if (done_) misuse("document already complete");
  if (!frames_.empty()) {
    if (frames_.back() == 'o' && !key_pending_)
      misuse("value inside object requires a key");
    if (frames_.back() == 'a' && has_elems_.back() == '1') out_ += ',';
    if (frames_.back() == 'a') has_elems_.back() = '1';
  }
  key_pending_ = false;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  frames_ += 'o';
  has_elems_ += '0';
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (frames_.empty() || frames_.back() != 'o' || key_pending_)
    misuse("end_object outside object");
  out_ += '}';
  frames_.pop_back();
  has_elems_.pop_back();
  if (frames_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  frames_ += 'a';
  has_elems_ += '0';
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (frames_.empty() || frames_.back() != 'a') misuse("end_array outside array");
  out_ += ']';
  frames_.pop_back();
  has_elems_.pop_back();
  if (frames_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (done_ || frames_.empty() || frames_.back() != 'o' || key_pending_)
    misuse("key outside object");
  if (has_elems_.back() == '1') out_ += ',';
  has_elems_.back() = '1';
  out_ += '"';
  out_ += escape(name);
  out_ += "\":";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  before_value();
  out_ += '"';
  out_ += escape(text);
  out_ += '"';
  if (frames_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  if (!std::isfinite(number)) return null();
  before_value();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", number);
  out_ += buf;
  if (frames_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  before_value();
  out_ += std::to_string(number);
  if (frames_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  before_value();
  out_ += std::to_string(number);
  if (frames_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  before_value();
  out_ += flag ? "true" : "false";
  if (frames_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  before_value();
  out_ += json;
  if (frames_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  if (frames_.empty()) done_ = true;
  return *this;
}

const std::string& JsonWriter::str() const {
  if (!done_ || !frames_.empty()) misuse("str() before document complete");
  return out_;
}

// ---------------------------------------------------------------------------
// Parsing: recursive-descent parser over the JSON grammar; json_valid is
// the same machinery with the resulting DOM discarded.

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object)
    if (k == key) return &v;
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> document() {
    skip_ws();
    JsonValue root;
    if (!value(root)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;
    return root;
  }

 private:
  bool value(JsonValue& out) {
    if (depth_ > 256) return false;  // pathological nesting
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object(out);
      case '[': return array(out);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return string(out.string);
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        return literal("null");
      default:
        out.kind = JsonValue::Kind::kNumber;
        return number(out.number);
    }
  }

  bool object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    ++depth_;
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; --depth_; return true; }
    while (true) {
      skip_ws();
      std::string key;
      if (peek() != '"' || !string(key)) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      JsonValue member;
      if (!value(member)) return false;
      out.object.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; --depth_; return true; }
      return false;
    }
  }

  bool array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    ++depth_;
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; --depth_; return true; }
    while (true) {
      skip_ws();
      JsonValue element;
      if (!value(element)) return false;
      out.array.push_back(std::move(element));
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; --depth_; return true; }
      return false;
    }
  }

  bool string(std::string& out) {
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char e = text_[pos_];
        if (e == 'u') {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() || !std::isxdigit(
                    static_cast<unsigned char>(text_[pos_])))
              return false;
            const char h = text_[pos_];
            code = code * 16 +
                   static_cast<unsigned>(h <= '9' ? h - '0'
                                                  : (h | 0x20) - 'a' + 10);
          }
          append_utf8(out, code);
        } else {
          switch (e) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            default: return false;
          }
        }
      } else {
        out += c;
      }
      ++pos_;
    }
    return false;
  }

  static void append_utf8(std::string& out, unsigned code) {
    // BMP-only (surrogate pairs are stored as-is per half); telemetry
    // documents never emit them, this just keeps round-trips lossless.
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  bool number(double& out) {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    // int part: single 0, or nonzero digit followed by digits (no leading 0s).
    if (peek() == '0') {
      ++pos_;
      if (std::isdigit(static_cast<unsigned char>(peek()))) return false;
    } else if (!digits()) {
      return false;
    }
    if (peek() == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digits()) return false;
    }
    if (pos_ == start) return false;
    out = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                      nullptr);
    return true;
  }

  bool digits() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
    return pos_ > start;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

std::optional<JsonValue> json_parse(std::string_view text) {
  return Parser(text).document();
}

bool json_valid(std::string_view text) {
  return Parser(text).document().has_value();
}

}  // namespace drlhmd::obs
