#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace drlhmd::obs {

namespace {

[[noreturn]] void misuse(const char* what) {
  throw std::logic_error(std::string("JsonWriter: ") + what);
}

}  // namespace

std::string JsonWriter::escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::before_value() {
  if (done_) misuse("document already complete");
  if (!frames_.empty()) {
    if (frames_.back() == 'o' && !key_pending_)
      misuse("value inside object requires a key");
    if (frames_.back() == 'a' && has_elems_.back() == '1') out_ += ',';
    if (frames_.back() == 'a') has_elems_.back() = '1';
  }
  key_pending_ = false;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  frames_ += 'o';
  has_elems_ += '0';
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (frames_.empty() || frames_.back() != 'o' || key_pending_)
    misuse("end_object outside object");
  out_ += '}';
  frames_.pop_back();
  has_elems_.pop_back();
  if (frames_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  frames_ += 'a';
  has_elems_ += '0';
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (frames_.empty() || frames_.back() != 'a') misuse("end_array outside array");
  out_ += ']';
  frames_.pop_back();
  has_elems_.pop_back();
  if (frames_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (done_ || frames_.empty() || frames_.back() != 'o' || key_pending_)
    misuse("key outside object");
  if (has_elems_.back() == '1') out_ += ',';
  has_elems_.back() = '1';
  out_ += '"';
  out_ += escape(name);
  out_ += "\":";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  before_value();
  out_ += '"';
  out_ += escape(text);
  out_ += '"';
  if (frames_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  if (!std::isfinite(number)) return null();
  before_value();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", number);
  out_ += buf;
  if (frames_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  before_value();
  out_ += std::to_string(number);
  if (frames_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  before_value();
  out_ += std::to_string(number);
  if (frames_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  before_value();
  out_ += flag ? "true" : "false";
  if (frames_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  before_value();
  out_ += json;
  if (frames_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  if (frames_.empty()) done_ = true;
  return *this;
}

const std::string& JsonWriter::str() const {
  if (!done_ || !frames_.empty()) misuse("str() before document complete");
  return out_;
}

// ---------------------------------------------------------------------------
// Validation: recursive-descent scanner over the JSON grammar.

namespace {

class Scanner {
 public:
  explicit Scanner(std::string_view text) : text_(text) {}

  bool document() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (depth_ > 256) return false;  // pathological nesting
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++depth_;
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; --depth_; return true; }
    while (true) {
      skip_ws();
      if (peek() != '"' || !string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; --depth_; return true; }
      return false;
    }
  }

  bool array() {
    ++depth_;
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; --depth_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; --depth_; return true; }
      return false;
    }
  }

  bool string() {
    ++pos_;  // '"'
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char e = text_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() || !std::isxdigit(
                    static_cast<unsigned char>(text_[pos_])))
              return false;
          }
        } else if (std::string_view("\"\\/bfnrt").find(e) ==
                   std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    // int part: single 0, or nonzero digit followed by digits (no leading 0s).
    if (peek() == '0') {
      ++pos_;
      if (std::isdigit(static_cast<unsigned char>(peek()))) return false;
    } else if (!digits()) {
      return false;
    }
    if (peek() == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digits()) return false;
    }
    return pos_ > start;
  }

  bool digits() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
    return pos_ > start;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

bool json_valid(std::string_view text) { return Scanner(text).document(); }

}  // namespace drlhmd::obs
