#include "obs/clock.hpp"

#include <atomic>

namespace drlhmd::obs {

std::chrono::steady_clock::time_point telemetry_epoch() {
  // Pinned on first use from any thread; function-local static
  // initialization is thread-safe.
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

double now_us_since_epoch() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - telemetry_epoch())
      .count();
}

double now_ms_since_epoch() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - telemetry_epoch())
      .count();
}

std::uint32_t current_thread_id() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace drlhmd::obs
