// Process-wide telemetry facade.
//
// Telemetry is OFF by default: instrumented call sites test one relaxed
// atomic bool and fall through, so the hot paths measured by the benches
// stay at seed performance.  `hmdctl telemetry`, tests, or any embedder
// flips it on to collect metrics (global MetricsRegistry), phase spans
// (global Tracer), and structured logs.
//
// Setting DRLHMD_TRACE_FILE=<path> in the environment enables telemetry at
// process start and writes the full Chrome trace-event JSON to <path> at
// exit — zero-code tracing for any binary linked against obs.
#pragma once

#include <chrono>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace drlhmd::obs {

class Telemetry {
 public:
  static bool enabled() {
    return enabled_flag().load(std::memory_order_relaxed);
  }
  static void set_enabled(bool on) {
    if (on) install_parallel_bridge();
    enabled_flag().store(on, std::memory_order_relaxed);
  }

  /// Global registry/tracer; valid for the process lifetime.
  static MetricsRegistry& metrics();
  static Tracer& tracer();

  /// Clear all recorded telemetry (tests and repeated CLI runs).
  static void reset();

  /// Snapshot the scratch-arena registry into drlhmd.arena.* gauges
  /// (arenas, capacity_bytes, high_water_bytes, scope_reuses,
  /// chunk_allocations).  Pull-based: call before exporting the registry —
  /// the serving hot paths never touch the metrics registry themselves.
  static void publish_arena_gauges();

 private:
  /// Register the drlhmd.parallel.* observer on the util thread pool
  /// (idempotent); done lazily so telemetry-off processes never pay it.
  static void install_parallel_bridge();

  static std::atomic<bool>& enabled_flag();
};

/// A span on the global tracer, or an inert Span when telemetry is off.
inline Span phase_span(std::string name) {
  if (!Telemetry::enabled()) return Span{};
  return Telemetry::tracer().span(std::move(name));
}

/// RAII latency recorder: observes elapsed microseconds into a legacy
/// fixed-bucket histogram and/or an exact tail histogram on destruction.
/// When both targets are null it is a no-op (and skips the clock reads
/// entirely).
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram* histogram,
                         ShardedTailHistogram* tail = nullptr)
      : histogram_(histogram), tail_(tail) {
    if (histogram_ != nullptr || tail_ != nullptr)
      start_ = std::chrono::steady_clock::now();
  }
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;
  ~ScopedLatency() {
    if (histogram_ == nullptr && tail_ == nullptr) return;
    const double us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
    if (histogram_ != nullptr) histogram_->observe(us);
    if (tail_ != nullptr) tail_->observe(us);
  }

 private:
  Histogram* histogram_;
  ShardedTailHistogram* tail_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace drlhmd::obs
