#include "obs/tail_histogram.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

#include "obs/clock.hpp"

namespace drlhmd::obs {

// ---------------------------------------------------------------------------
// Layout.

TailLayout::TailLayout(const TailConfig& config) {
  if (config.precision_bits < 1 || config.precision_bits > 14)
    throw std::invalid_argument("TailLayout: precision_bits must be in [1,14]");
  if (!(config.ticks_per_unit > 0.0) || !std::isfinite(config.ticks_per_unit))
    throw std::invalid_argument("TailLayout: ticks_per_unit must be positive");
  if (!(config.max_value > 0.0) || !std::isfinite(config.max_value))
    throw std::invalid_argument("TailLayout: max_value must be positive");

  precision_bits_ = config.precision_bits;
  sub_half_shift_ = precision_bits_;
  sub_half_count_ = std::uint64_t{1} << precision_bits_;
  sub_count_ = sub_half_count_ * 2;
  sub_mask_ = sub_count_ - 1;
  ticks_per_unit_ = config.ticks_per_unit;

  const double requested_ticks = config.max_value * ticks_per_unit_;
  // Bound far below 2^63 so shifts and sums never overflow.
  const double kCeiling = 9.0e18;
  std::uint64_t requested =
      requested_ticks >= kCeiling
          ? static_cast<std::uint64_t>(kCeiling)
          : static_cast<std::uint64_t>(std::llround(requested_ticks));
  if (requested < sub_count_) requested = sub_count_;
  // Snap the range up to the top of the enclosing bucket so the last
  // bucket is fully usable.
  max_ticks_ = requested;  // provisional: index_for needs a value in range
  max_ticks_ = highest_equivalent(index_for(requested));
  num_counts_ = index_for(max_ticks_) + 1;
}

std::uint64_t TailLayout::ticks_for(double value) const {
  const double scaled = value * ticks_per_unit_;
  if (scaled >= static_cast<double>(max_ticks_)) return max_ticks_;
  return static_cast<std::uint64_t>(std::llround(scaled));
}

std::size_t TailLayout::index_for(std::uint64_t ticks) const {
  if (ticks > max_ticks_) ticks = max_ticks_;
  // Octave of the value relative to the linear range: values below
  // sub_count_ land in bucket 0 with unit-width slots; each octave above
  // doubles the slot width and reuses the upper half of the sub-bucket
  // index space.
  const int bucket = std::bit_width(ticks | sub_mask_) - 1 - sub_half_shift_;
  const std::uint64_t sub = ticks >> (bucket > 0 ? bucket : 0);
  const int b = bucket > 0 ? bucket : 0;
  return (static_cast<std::size_t>(b) << sub_half_shift_) +
         static_cast<std::size_t>(sub);
}

std::uint64_t TailLayout::lowest_equivalent(std::size_t index) const {
  if (index < sub_count_) return index;
  const int bucket = static_cast<int>(index >> sub_half_shift_) - 1;
  const std::uint64_t sub =
      index - (static_cast<std::size_t>(bucket) << sub_half_shift_);
  return sub << bucket;
}

std::uint64_t TailLayout::highest_equivalent(std::size_t index) const {
  if (index < sub_count_) return index;
  const int bucket = static_cast<int>(index >> sub_half_shift_) - 1;
  const std::uint64_t sub =
      index - (static_cast<std::size_t>(bucket) << sub_half_shift_);
  return ((sub + 1) << bucket) - 1;
}

const TailConfig& default_latency_tail_config() {
  static const TailConfig config{};
  return config;
}

namespace {

enum class SampleKind { kDropped, kOk, kSaturated };

/// Classify one observation and quantize it; NaN, Inf, and negative values
/// never reach the buckets (they would poison min/max/sum).
SampleKind classify(const TailLayout& layout, double value,
                    std::uint64_t& ticks) {
  if (!std::isfinite(value) || value < 0.0) return SampleKind::kDropped;
  ticks = layout.ticks_for(value);
  return value > layout.max_value() ? SampleKind::kSaturated : SampleKind::kOk;
}

}  // namespace

// ---------------------------------------------------------------------------
// TailHistogram.

TailHistogram::TailHistogram(const TailConfig& config)
    : layout_(config), counts_(layout_.num_counts(), 0) {}

void TailHistogram::observe(double value) {
  std::uint64_t ticks = 0;
  const SampleKind kind = classify(layout_, value, ticks);
  if (kind == SampleKind::kDropped) {
    ++dropped_;
    return;
  }
  if (kind == SampleKind::kSaturated) ++saturated_;
  ++counts_[layout_.index_for(ticks)];
  ++count_;
  sum_ticks_ += ticks;
  if (ticks < min_ticks_) min_ticks_ = ticks;
  if (ticks > max_ticks_seen_) max_ticks_seen_ = ticks;
}

double TailHistogram::sum() const {
  return static_cast<double>(sum_ticks_) / layout_.ticks_per_unit();
}

double TailHistogram::min() const {
  if (count_ == 0) return std::numeric_limits<double>::quiet_NaN();
  return static_cast<double>(min_ticks_) / layout_.ticks_per_unit();
}

double TailHistogram::max() const {
  if (count_ == 0) return std::numeric_limits<double>::quiet_NaN();
  return static_cast<double>(max_ticks_seen_) / layout_.ticks_per_unit();
}

double TailHistogram::quantile(double q) const {
  if (count_ == 0) return std::numeric_limits<double>::quiet_NaN();
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-quantile sample (1-based); ceil so p100 is the max.
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  if (rank < 1) rank = 1;
  if (rank > count_) rank = count_;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    if (cumulative >= rank) {
      return static_cast<double>(layout_.highest_equivalent(i)) /
             layout_.ticks_per_unit();
    }
  }
  return max();  // unreachable when counts are consistent
}

void TailHistogram::reset() {
  counts_.assign(counts_.size(), 0);
  count_ = 0;
  dropped_ = 0;
  saturated_ = 0;
  sum_ticks_ = 0;
  min_ticks_ = std::numeric_limits<std::uint64_t>::max();
  max_ticks_seen_ = 0;
}

void TailHistogram::fold_stats(std::uint64_t dropped, std::uint64_t saturated,
                               std::uint64_t sum_ticks,
                               std::uint64_t min_ticks,
                               std::uint64_t max_ticks) {
  dropped_ += dropped;
  saturated_ += saturated;
  sum_ticks_ += sum_ticks;
  if (min_ticks < min_ticks_) min_ticks_ = min_ticks;
  if (max_ticks > max_ticks_seen_) max_ticks_seen_ = max_ticks;
}

void TailHistogram::merge(const TailHistogram& other) {
  if (!(layout_ == other.layout_))
    throw std::invalid_argument("TailHistogram::merge: layout mismatch");
  for (std::size_t i = 0; i < counts_.size(); ++i)
    counts_[i] += other.counts_[i];
  count_ += other.count_;
  fold_stats(other.dropped_, other.saturated_, other.sum_ticks_,
             other.min_ticks_, other.max_ticks_seen_);
}

double TailHistogram::Snapshot::quantile(double q) const {
  if (count == 0) return std::numeric_limits<double>::quiet_NaN();
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  std::uint64_t rank =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count)));
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  std::uint64_t cumulative = 0;
  for (const Bucket& b : buckets) {
    cumulative += b.count;
    if (cumulative >= rank) return b.hi;
  }
  return max;
}

TailHistogram::Snapshot TailHistogram::snapshot() const {
  Snapshot snap;
  snap.count = count_;
  snap.dropped = dropped_;
  snap.saturated = saturated_;
  snap.sum = sum();
  snap.min = min();
  snap.max = max();
  snap.p50 = quantile(0.50);
  snap.p90 = quantile(0.90);
  snap.p99 = quantile(0.99);
  snap.p999 = quantile(0.999);
  snap.p9999 = quantile(0.9999);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    snap.buckets.push_back(
        {static_cast<double>(layout_.lowest_equivalent(i)) /
             layout_.ticks_per_unit(),
         static_cast<double>(layout_.highest_equivalent(i)) /
             layout_.ticks_per_unit(),
         counts_[i]});
  }
  return snap;
}

// ---------------------------------------------------------------------------
// ShardedTailHistogram.

struct ShardedTailHistogram::Shard {
  explicit Shard(std::size_t n_counts)
      : counts(new std::atomic<std::uint64_t>[n_counts]) {
    for (std::size_t i = 0; i < n_counts; ++i)
      counts[i].store(0, std::memory_order_relaxed);
  }

  std::unique_ptr<std::atomic<std::uint64_t>[]> counts;
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<std::uint64_t> saturated{0};
  std::atomic<std::uint64_t> sum_ticks{0};
  std::atomic<std::uint64_t> min_ticks{
      std::numeric_limits<std::uint64_t>::max()};
  std::atomic<std::uint64_t> max_ticks{0};
};

ShardedTailHistogram::ShardedTailHistogram(const TailConfig& config)
    : layout_(config) {
  for (auto& slot : shards_) slot.store(nullptr, std::memory_order_relaxed);
}

ShardedTailHistogram::~ShardedTailHistogram() {
  for (auto& slot : shards_) delete slot.load(std::memory_order_acquire);
}

ShardedTailHistogram::Shard& ShardedTailHistogram::shard_for_current_thread() {
  const std::size_t slot = current_thread_id() % kShardSlots;
  Shard* shard = shards_[slot].load(std::memory_order_acquire);
  if (shard != nullptr) return *shard;
  auto* fresh = new Shard(layout_.num_counts());
  Shard* expected = nullptr;
  if (shards_[slot].compare_exchange_strong(expected, fresh,
                                            std::memory_order_acq_rel)) {
    return *fresh;
  }
  delete fresh;  // another thread on the same slot won the install
  return *expected;
}

void ShardedTailHistogram::observe(double value) {
  std::uint64_t ticks = 0;
  const SampleKind kind = classify(layout_, value, ticks);
  Shard& shard = shard_for_current_thread();
  if (kind == SampleKind::kDropped) {
    shard.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (kind == SampleKind::kSaturated)
    shard.saturated.fetch_add(1, std::memory_order_relaxed);
  // The hot path: one wait-free increment on the bucket slot.
  shard.counts[layout_.index_for(ticks)].fetch_add(1,
                                                   std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum_ticks.fetch_add(ticks, std::memory_order_relaxed);
  std::uint64_t seen = shard.min_ticks.load(std::memory_order_relaxed);
  while (ticks < seen && !shard.min_ticks.compare_exchange_weak(
                             seen, ticks, std::memory_order_relaxed)) {
  }
  seen = shard.max_ticks.load(std::memory_order_relaxed);
  while (ticks > seen && !shard.max_ticks.compare_exchange_weak(
                             seen, ticks, std::memory_order_relaxed)) {
  }
}

void ShardedTailHistogram::reset() {
  for (auto& slot : shards_) {
    Shard* shard = slot.load(std::memory_order_acquire);
    if (shard == nullptr) continue;
    for (std::size_t i = 0; i < layout_.num_counts(); ++i)
      shard->counts[i].store(0, std::memory_order_relaxed);
    shard->count.store(0, std::memory_order_relaxed);
    shard->dropped.store(0, std::memory_order_relaxed);
    shard->saturated.store(0, std::memory_order_relaxed);
    shard->sum_ticks.store(0, std::memory_order_relaxed);
    shard->min_ticks.store(std::numeric_limits<std::uint64_t>::max(),
                           std::memory_order_relaxed);
    shard->max_ticks.store(0, std::memory_order_relaxed);
  }
}

TailHistogram ShardedTailHistogram::aggregate() const {
  TailConfig config;
  config.max_value =
      static_cast<double>(layout_.max_ticks()) / layout_.ticks_per_unit();
  config.precision_bits = layout_.precision_bits();
  config.ticks_per_unit = layout_.ticks_per_unit();
  TailHistogram merged(config);
  for (const auto& slot : shards_) {
    const Shard* shard = slot.load(std::memory_order_acquire);
    if (shard == nullptr) continue;
    for (std::size_t i = 0; i < layout_.num_counts(); ++i) {
      const std::uint64_t n = shard->counts[i].load(std::memory_order_relaxed);
      if (n != 0) merged.add_ticks(i, n);
    }
    merged.fold_stats(shard->dropped.load(std::memory_order_relaxed),
                      shard->saturated.load(std::memory_order_relaxed),
                      shard->sum_ticks.load(std::memory_order_relaxed),
                      shard->min_ticks.load(std::memory_order_relaxed),
                      shard->max_ticks.load(std::memory_order_relaxed));
  }
  return merged;
}

}  // namespace drlhmd::obs
