// Minimal JSON emission + validation for telemetry export.
//
// JsonWriter is a streaming writer with correct string escaping and
// non-finite-number handling (NaN/Inf emit as null, which strict parsers
// accept).  json_valid() is a recursive-descent syntax checker used by the
// tests and the ctest smoke target to assert that everything we emit
// actually parses.  This is deliberately not a DOM library: telemetry only
// ever writes JSON and checks it round-trips.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace drlhmd::obs {

/// Streaming JSON writer.  Callers drive begin/end + key/value in document
/// order; the writer inserts commas and escapes strings.  Misuse (a value
/// where a key is required) is a programming error and throws.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Key inside an object; must be followed by exactly one value.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(double number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(bool flag);
  JsonWriter& null();

  /// Inject a pre-rendered JSON value verbatim (e.g. a sub-document from
  /// another writer).  The caller is responsible for its validity.
  JsonWriter& raw(std::string_view json);

  /// Convenience: key + value in one call.
  template <typename T>
  JsonWriter& kv(std::string_view name, T&& v) {
    key(name);
    return value(std::forward<T>(v));
  }

  /// Finished document (all containers must be closed).
  const std::string& str() const;

  static std::string escape(std::string_view raw);

 private:
  enum class Frame : std::uint8_t { kObject, kArray };
  void before_value();

  std::string out_;
  // Parallel stacks: container kind and whether it already holds an element.
  std::string frames_;       // 'o' / 'a'
  std::string has_elems_;    // '0' / '1'
  bool key_pending_ = false;
  bool done_ = false;
};

/// Parsed JSON document node.  A deliberately small DOM: object members
/// keep document order (duplicates allowed, first wins on lookup), numbers
/// are doubles.  Used by tools/benchdiff to load BENCH_*.json files and by
/// tests to structurally inspect exported telemetry.
class JsonValue {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// Member lookup (objects only); nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;
};

/// Parse a complete JSON document; std::nullopt on any syntax error.
std::optional<JsonValue> json_parse(std::string_view text);

/// True when `text` is a syntactically valid JSON document.
bool json_valid(std::string_view text);

}  // namespace drlhmd::obs
