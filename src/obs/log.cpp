#include "obs/log.hpp"

#include <cstdio>

#include "obs/clock.hpp"
#include "obs/json.hpp"

namespace drlhmd::obs {

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

std::string LogRecord::to_jsonl() const {
  JsonWriter w;
  w.begin_object()
      .kv("ts_ms", ts_ms)
      .kv("level", std::string_view(level_name(level)))
      .kv("file", std::string_view(file))
      .kv("line", static_cast<std::int64_t>(line))
      .kv("msg", std::string_view(message))
      .end_object();
  return w.str();
}

// Timestamps use the shared telemetry epoch so log records, trace spans,
// and metrics snapshots sit on one time base.
Logger::Logger() : level_(static_cast<int>(LogLevel::kWarn)) {
  telemetry_epoch();
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

bool Logger::open_jsonl(const std::string& path) {
  const std::lock_guard<std::mutex> lock(mu_);
  jsonl_.close();
  jsonl_.clear();
  if (path.empty()) return true;
  jsonl_.open(path, std::ios::out | std::ios::app);
  return jsonl_.is_open();
}

void Logger::close_jsonl() { open_jsonl(""); }

void Logger::set_callback(std::function<void(const LogRecord&)> callback) {
  const std::lock_guard<std::mutex> lock(mu_);
  callback_ = std::move(callback);
}

void Logger::submit(LogRecord record) {
  record.ts_ms = now_ms_since_epoch();
  if (stderr_sink_.load(std::memory_order_relaxed)) {
    std::fprintf(stderr, "[%s] %s:%d %s\n", level_name(record.level),
                 record.file, record.line, record.message.c_str());
  }
  const std::lock_guard<std::mutex> lock(mu_);
  if (jsonl_.is_open()) {
    jsonl_ << record.to_jsonl() << '\n';
    jsonl_.flush();
  }
  if (callback_) callback_(record);
}

void Logger::reset() {
  set_level(LogLevel::kWarn);
  set_stderr_sink(true);
  const std::lock_guard<std::mutex> lock(mu_);
  jsonl_.close();
  jsonl_.clear();
  callback_ = nullptr;
}

LogStream::~LogStream() {
  LogRecord record;
  record.level = level_;
  record.file = file_;
  record.line = line_;
  record.message = stream_.str();
  Logger::instance().submit(std::move(record));
}

}  // namespace drlhmd::obs
