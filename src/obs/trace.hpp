// Hierarchical phase tracing: RAII spans recording wall-clock durations.
//
// A Tracer holds an append-only list of span events; Span is a move-only
// RAII handle that closes its event on destruction (or explicit end()).
// Spans nest through the tracer's open-span stack, so the pipeline's eight
// phases and the runtime's per-sample stages come out as a tree that can be
// exported as a JSON trace or a flat timing table.  A default-constructed
// Span is a no-op — that is how instrumentation stays free when telemetry
// is disabled.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace drlhmd::obs {

class Tracer;

/// One completed (or still-open) span.
struct TraceEvent {
  std::string name;
  std::string category = "phase";  // exporter category ("phase", "parallel", ...)
  std::size_t parent = kNoParent;  // index into the tracer's event list
  int depth = 0;
  std::uint32_t tid = 0;           // dense thread id (obs::current_thread_id)
  std::uint64_t flow_id = 0;       // nonzero: member of a fork/join flow
  double start_us = 0.0;           // relative to the shared telemetry epoch
  double dur_us = 0.0;
  bool open = true;

  static constexpr std::size_t kNoParent = static_cast<std::size_t>(-1);
};

/// Move-only RAII handle; closes its event when destroyed.
class Span {
 public:
  Span() = default;  // no-op span
  Span(Span&& other) noexcept : tracer_(other.tracer_), index_(other.index_) {
    other.tracer_ = nullptr;
  }
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { end(); }

  /// Close now (idempotent).
  void end();
  bool active() const { return tracer_ != nullptr; }

 private:
  friend class Tracer;
  Span(Tracer* tracer, std::size_t index) : tracer_(tracer), index_(index) {}

  Tracer* tracer_ = nullptr;
  std::size_t index_ = 0;
};

/// Thread-safe event sink.  Nesting is tracked with a single open-span
/// stack, so hierarchical structure assumes spans open/close on one thread
/// (recording itself is safe from any thread).
class Tracer {
 public:
  Tracer();

  Span span(std::string name, std::string category = "phase",
            std::uint64_t flow_id = 0);

  /// Append an already-timed event (used by worker threads reporting chunk
  /// timings after the fact).  Does not touch the open-span stack, so it is
  /// safe from any thread while spans are open elsewhere.
  void complete_event(std::string name, std::string category, double start_us,
                      double dur_us, std::uint64_t flow_id = 0);

  /// Fresh nonzero id tying fork/join events into one exported flow.
  std::uint64_t next_flow_id();

  /// Snapshot of all events recorded so far.
  std::vector<TraceEvent> events() const;
  std::size_t size() const;
  void clear();

  /// {"spans": [{"name":..,"depth":..,"start_us":..,"dur_us":..}, ...]}
  std::string to_json() const;
  /// Indented flat timing table (name, start, duration).
  std::string to_table() const;

 private:
  friend class Span;
  void close(std::size_t index);
  double now_us() const;

  mutable std::mutex mu_;
  std::atomic<std::uint64_t> flow_ids_{0};
  std::vector<TraceEvent> events_;
  std::vector<std::size_t> stack_;  // indices of open spans
};

}  // namespace drlhmd::obs
