// Chrome trace-event (a.k.a. Perfetto legacy JSON) export for Tracer.
//
// Emits the trace as {"traceEvents":[...]} with:
//   * "X" complete events for closed spans (name/cat/ts/dur/pid/tid),
//   * "B" begin events for spans still open at export time,
//   * "s"/"t"/"f" flow events tying a parallel region's fork span to the
//     per-chunk slices that ran on worker threads (shared flow id), so
//     chrome://tracing and ui.perfetto.dev draw arrows across threads.
//
// Timestamps are microseconds on the shared telemetry epoch, which is what
// the trace-event format expects ("ts"/"dur" are in microseconds).
#pragma once

#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace drlhmd::obs {

/// Render events as one Chrome trace-event JSON document.
std::string to_chrome_trace(const std::vector<TraceEvent>& events);

/// Export a tracer's current events to `path`; false when the file cannot
/// be written.
bool write_chrome_trace_file(const Tracer& tracer, const std::string& path);

}  // namespace drlhmd::obs
