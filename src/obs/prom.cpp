#include "obs/prom.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>

namespace drlhmd::obs {

namespace {

bool name_start_char(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}
bool name_char(char c) {
  return name_start_char(c) || std::isdigit(static_cast<unsigned char>(c));
}
bool label_start_char(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool label_char(char c) {
  return label_start_char(c) || std::isdigit(static_cast<unsigned char>(c));
}

std::string escape_label_value(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string format_value(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

/// `name{k="v",...}` with an optional extra label appended last.
std::string series(const std::string& name, const Labels& labels,
                   const char* extra_key = nullptr,
                   const std::string& extra_value = {}) {
  std::string out = name;
  if (!labels.empty() || extra_key != nullptr) {
    out += '{';
    bool first = true;
    for (const auto& [k, v] : labels) {
      if (!first) out += ',';
      first = false;
      out += prom_name(k);
      out += "=\"";
      out += escape_label_value(v);
      out += '"';
    }
    if (extra_key != nullptr) {
      if (!first) out += ',';
      out += extra_key;
      out += "=\"";
      out += escape_label_value(extra_value);
      out += '"';
    }
    out += '}';
  }
  return out;
}

/// Emit `# TYPE` the first time a sanitized name is seen.
void type_line(std::string& out, std::map<std::string, bool>& seen,
               const std::string& name, const char* type) {
  if (seen.emplace(name, true).second) {
    out += "# TYPE ";
    out += name;
    out += ' ';
    out += type;
    out += '\n';
  }
}

void sample(std::string& out, const std::string& series_text, double value) {
  out += series_text;
  out += ' ';
  out += format_value(value);
  out += '\n';
}

}  // namespace

std::string prom_name(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) out += name_char(c) ? c : '_';
  if (out.empty() || !name_start_char(out[0])) out.insert(out.begin(), '_');
  return out;
}

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  std::map<std::string, bool> typed;

  for (const auto& c : snapshot.counters) {
    const std::string name = prom_name(c.name);
    type_line(out, typed, name, "counter");
    sample(out, series(name, c.labels), static_cast<double>(c.value));
  }

  for (const auto& g : snapshot.gauges) {
    const std::string name = prom_name(g.name);
    type_line(out, typed, name, "gauge");
    sample(out, series(name, g.labels), g.value);
  }

  for (const auto& h : snapshot.histograms) {
    const std::string name = prom_name(h.name);
    type_line(out, typed, name, "histogram");
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < h.data.buckets.size(); ++b) {
      cumulative += h.data.buckets[b];
      const std::string le = b < h.data.bounds.size()
                                 ? format_value(h.data.bounds[b])
                                 : std::string("+Inf");
      sample(out, series(name + "_bucket", h.labels, "le", le),
             static_cast<double>(cumulative));
    }
    sample(out, series(name + "_sum", h.labels), h.data.sum);
    sample(out, series(name + "_count", h.labels),
           static_cast<double>(h.data.count));
  }

  for (const auto& t : snapshot.tails) {
    const std::string name = prom_name(t.name);
    type_line(out, typed, name, "summary");
    static constexpr struct {
      const char* label;
      double TailHistogram::Snapshot::* member;
    } kQuantiles[] = {
        {"0.5", &TailHistogram::Snapshot::p50},
        {"0.9", &TailHistogram::Snapshot::p90},
        {"0.99", &TailHistogram::Snapshot::p99},
        {"0.999", &TailHistogram::Snapshot::p999},
        {"0.9999", &TailHistogram::Snapshot::p9999},
    };
    for (const auto& q : kQuantiles)
      sample(out, series(name, t.labels, "quantile", q.label),
             t.data.*(q.member));
    sample(out, series(name + "_sum", t.labels), t.data.sum);
    sample(out, series(name + "_count", t.labels),
           static_cast<double>(t.data.count));
  }

  return out;
}

// ---------------------------------------------------------------------------
// Lint.

namespace {

class Linter {
 public:
  explicit Linter(std::string_view text) : text_(text) {}

  bool run(std::string* error) {
    std::size_t line_no = 0;
    std::size_t pos = 0;
    while (pos <= text_.size()) {
      const std::size_t eol = text_.find('\n', pos);
      const std::string_view line =
          text_.substr(pos, (eol == std::string_view::npos ? text_.size()
                                                           : eol) -
                                pos);
      ++line_no;
      std::string reason;
      if (!check_line(line, reason)) {
        if (error != nullptr)
          *error = "line " + std::to_string(line_no) + ": " + reason;
        return false;
      }
      if (eol == std::string_view::npos) break;
      pos = eol + 1;
    }
    return true;
  }

 private:
  bool check_line(std::string_view line, std::string& reason) {
    if (line.empty()) return true;
    if (line[0] == '#') return check_comment(line, reason);
    return check_sample(line, reason);
  }

  bool check_comment(std::string_view line, std::string& reason) {
    if (line.rfind("# TYPE ", 0) != 0) return true;  // HELP / free comment
    std::string_view rest = line.substr(7);
    const std::size_t space = rest.find(' ');
    if (space == std::string_view::npos) {
      reason = "TYPE line missing type";
      return false;
    }
    const std::string name(rest.substr(0, space));
    const std::string_view type = rest.substr(space + 1);
    if (!valid_name(name)) {
      reason = "invalid metric name in TYPE line";
      return false;
    }
    if (type != "counter" && type != "gauge" && type != "histogram" &&
        type != "summary" && type != "untyped") {
      reason = "unknown metric type '" + std::string(type) + "'";
      return false;
    }
    if (!types_.emplace(name, std::string(type)).second) {
      reason = "duplicate TYPE for '" + name + "'";
      return false;
    }
    return true;
  }

  bool check_sample(std::string_view line, std::string& reason) {
    std::size_t pos = 0;
    // Metric name.
    if (pos >= line.size() || !name_start_char(line[pos])) {
      reason = "sample does not start with a metric name";
      return false;
    }
    while (pos < line.size() && name_char(line[pos])) ++pos;
    const std::string name(line.substr(0, pos));
    // Optional label block.
    if (pos < line.size() && line[pos] == '{') {
      ++pos;
      while (pos < line.size() && line[pos] != '}') {
        if (!label_start_char(line[pos])) {
          reason = "invalid label name";
          return false;
        }
        while (pos < line.size() && label_char(line[pos])) ++pos;
        if (pos >= line.size() || line[pos] != '=') {
          reason = "label missing '='";
          return false;
        }
        ++pos;
        if (pos >= line.size() || line[pos] != '"') {
          reason = "label value not quoted";
          return false;
        }
        ++pos;
        while (pos < line.size() && line[pos] != '"') {
          if (line[pos] == '\\') {
            ++pos;
            if (pos >= line.size() ||
                (line[pos] != '\\' && line[pos] != '"' && line[pos] != 'n')) {
              reason = "bad escape in label value";
              return false;
            }
          }
          ++pos;
        }
        if (pos >= line.size()) {
          reason = "unterminated label value";
          return false;
        }
        ++pos;  // closing quote
        if (pos < line.size() && line[pos] == ',') ++pos;
      }
      if (pos >= line.size()) {
        reason = "unterminated label block";
        return false;
      }
      ++pos;  // '}'
    }
    if (pos >= line.size() || line[pos] != ' ') {
      reason = "missing space before value";
      return false;
    }
    ++pos;
    // Value (exposition float, or NaN/+Inf/-Inf literals).
    const std::string value(line.substr(pos));
    const std::size_t value_end = value.find(' ');
    const std::string value_tok = value.substr(0, value_end);
    if (value_tok != "NaN" && value_tok != "+Inf" && value_tok != "-Inf") {
      char* end = nullptr;
      std::strtod(value_tok.c_str(), &end);
      if (end == value_tok.c_str() || *end != '\0') {
        reason = "unparsable sample value '" + value_tok + "'";
        return false;
      }
    }
    // Optional trailing timestamp (integer milliseconds).
    if (value_end != std::string::npos) {
      const std::string ts = value.substr(value_end + 1);
      if (ts.empty() ||
          ts.find_first_not_of("-0123456789") != std::string::npos) {
        reason = "malformed timestamp";
        return false;
      }
    }
    // Every series must be covered by a prior TYPE declaration, either by
    // exact name or via the histogram/summary child-series suffixes.
    if (types_.count(name) != 0) return true;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const std::string_view sv(suffix);
      if (name.size() > sv.size() &&
          name.compare(name.size() - sv.size(), sv.size(), sv) == 0) {
        const std::string base = name.substr(0, name.size() - sv.size());
        const auto it = types_.find(base);
        if (it != types_.end() &&
            (it->second == "histogram" || it->second == "summary"))
          return true;
      }
    }
    reason = "sample '" + name + "' has no preceding TYPE line";
    return false;
  }

  static bool valid_name(const std::string& name) {
    if (name.empty() || !name_start_char(name[0])) return false;
    for (const char c : name)
      if (!name_char(c)) return false;
    return true;
  }

  std::string_view text_;
  std::map<std::string, std::string> types_;
};

}  // namespace

bool prom_lint(std::string_view text, std::string* error) {
  return Linter(text).run(error);
}

}  // namespace drlhmd::obs
