#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace drlhmd::util {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  return count_ > 0 ? m2_ / static_cast<double>(count_) : 0.0;
}

double RunningStats::sample_variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double total = 0.0;
  for (double x : xs) total += x;
  return total / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  RunningStats rs;
  for (double x : xs) rs.add(x);
  return rs.variance();
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double median(std::vector<double> xs) { return quantile(std::move(xs), 0.5); }

double quantile(std::vector<double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument("quantile: empty input");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q out of [0,1]");
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size())
    throw std::invalid_argument("pearson: size mismatch");
  if (xs.empty()) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double entropy_from_counts(std::span<const std::size_t> counts) {
  std::size_t total = 0;
  for (std::size_t c : counts) total += c;
  if (total == 0) return 0.0;
  double h = 0.0;
  for (std::size_t c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / static_cast<double>(total);
    h -= p * std::log(p);
  }
  return h;
}

std::vector<std::size_t> histogram(std::span<const double> xs, double lo, double hi,
                                   std::size_t bins) {
  if (bins == 0) throw std::invalid_argument("histogram: bins must be > 0");
  if (!(lo < hi)) throw std::invalid_argument("histogram: lo must be < hi");
  std::vector<std::size_t> counts(bins, 0);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (double x : xs) {
    auto bin = static_cast<std::ptrdiff_t>((x - lo) / width);
    bin = std::clamp<std::ptrdiff_t>(bin, 0, static_cast<std::ptrdiff_t>(bins) - 1);
    ++counts[static_cast<std::size_t>(bin)];
  }
  return counts;
}

}  // namespace drlhmd::util
