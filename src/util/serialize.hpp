// Portable byte-oriented serialization used to persist trained models.
//
// Model bytes serve three purposes in the framework: (1) measuring the
// memory footprint that the constraint-aware controller trades off against
// accuracy, (2) feeding the SHA-256 integrity vault (Section 2.7 of the
// paper), and (3) the payloads of on-disk artifacts (util/artifact.hpp).
// The encoding is little-endian and versioned per model type.
//
// ByteReader is hardened against malformed input: every read — including
// the length prefixes of strings, vectors, and blobs — is bounds-checked
// against the remaining bytes *before* any allocation, so deserializing a
// truncated or corrupt artifact throws std::out_of_range instead of
// over-reading or attempting a multi-exabyte allocation.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace drlhmd::util {

/// Append-only binary writer.
class ByteWriter {
 public:
  void write_u8(std::uint8_t v) { bytes_.push_back(v); }
  void write_u32(std::uint32_t v) { write_raw(&v, sizeof v); }
  void write_u64(std::uint64_t v) { write_raw(&v, sizeof v); }
  void write_i64(std::int64_t v) { write_raw(&v, sizeof v); }
  void write_f64(double v) { write_raw(&v, sizeof v); }

  void write_string(const std::string& s) {
    write_u64(s.size());
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }

  /// Length-prefixed byte blob (wire-compatible with a u64 count followed
  /// by that many write_u8 calls).
  void write_bytes(std::span<const std::uint8_t> blob) {
    write_u64(blob.size());
    bytes_.insert(bytes_.end(), blob.begin(), blob.end());
  }

  void write_f64_vec(std::span<const double> v) {
    write_u64(v.size());
    for (double x : v) write_f64(x);
  }

  void write_u64_vec(std::span<const std::uint64_t> v) {
    write_u64(v.size());
    for (std::uint64_t x : v) write_u64(x);
  }

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }
  std::size_t size() const { return bytes_.size(); }

 private:
  void write_raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    bytes_.insert(bytes_.end(), b, b + n);
  }

  std::vector<std::uint8_t> bytes_;
};

/// Sequential binary reader with bounds checking.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t read_u8() { return read_pod<std::uint8_t>(); }
  std::uint32_t read_u32() { return read_pod<std::uint32_t>(); }
  std::uint64_t read_u64() { return read_pod<std::uint64_t>(); }
  std::int64_t read_i64() { return read_pod<std::int64_t>(); }
  double read_f64() { return read_pod<double>(); }

  std::string read_string() {
    const std::uint64_t n = read_u64();
    require(n, sizeof(char));
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }

  /// Length-prefixed byte blob written by ByteWriter::write_bytes.
  std::vector<std::uint8_t> read_bytes() {
    const std::uint64_t n = read_u64();
    require(n, sizeof(std::uint8_t));
    std::vector<std::uint8_t> blob(bytes_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                   bytes_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += static_cast<std::size_t>(n);
    return blob;
  }

  std::vector<double> read_f64_vec() {
    const std::uint64_t n = read_u64();
    require(n, sizeof(double));
    std::vector<double> v(static_cast<std::size_t>(n));
    for (auto& x : v) x = read_f64();
    return v;
  }

  std::vector<std::uint64_t> read_u64_vec() {
    const std::uint64_t n = read_u64();
    require(n, sizeof(std::uint64_t));
    std::vector<std::uint64_t> v(static_cast<std::size_t>(n));
    for (auto& x : v) x = read_u64();
    return v;
  }

  bool exhausted() const { return pos_ == bytes_.size(); }
  std::size_t remaining() const { return bytes_.size() - pos_; }

 private:
  template <typename T>
  T read_pod() {
    require(1, sizeof(T));
    T v;
    std::memcpy(&v, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  /// Check that `count` elements of `elem_size` bytes fit in the remaining
  /// input, without overflowing the product.
  void require(std::uint64_t count, std::size_t elem_size) {
    const std::uint64_t left = remaining();
    if (elem_size != 0 && count > left / elem_size)
      throw std::out_of_range("ByteReader: truncated input");
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace drlhmd::util
