// Portable byte-oriented serialization used to persist trained models.
//
// Model bytes serve two purposes in the framework: (1) measuring the memory
// footprint that the constraint-aware controller trades off against accuracy,
// and (2) feeding the SHA-256 integrity vault (Section 2.7 of the paper).
// The encoding is little-endian and versioned per model type.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace drlhmd::util {

/// Append-only binary writer.
class ByteWriter {
 public:
  void write_u8(std::uint8_t v) { bytes_.push_back(v); }
  void write_u32(std::uint32_t v) { write_raw(&v, sizeof v); }
  void write_u64(std::uint64_t v) { write_raw(&v, sizeof v); }
  void write_i64(std::int64_t v) { write_raw(&v, sizeof v); }
  void write_f64(double v) { write_raw(&v, sizeof v); }

  void write_string(const std::string& s) {
    write_u64(s.size());
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }

  void write_f64_vec(std::span<const double> v) {
    write_u64(v.size());
    for (double x : v) write_f64(x);
  }

  void write_u64_vec(std::span<const std::uint64_t> v) {
    write_u64(v.size());
    for (std::uint64_t x : v) write_u64(x);
  }

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }
  std::size_t size() const { return bytes_.size(); }

 private:
  void write_raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    bytes_.insert(bytes_.end(), b, b + n);
  }

  std::vector<std::uint8_t> bytes_;
};

/// Sequential binary reader with bounds checking.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t read_u8() { return read_pod<std::uint8_t>(); }
  std::uint32_t read_u32() { return read_pod<std::uint32_t>(); }
  std::uint64_t read_u64() { return read_pod<std::uint64_t>(); }
  std::int64_t read_i64() { return read_pod<std::int64_t>(); }
  double read_f64() { return read_pod<double>(); }

  std::string read_string() {
    const std::uint64_t n = read_u64();
    require(n);
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }

  std::vector<double> read_f64_vec() {
    const std::uint64_t n = read_u64();
    std::vector<double> v(static_cast<std::size_t>(n));
    for (auto& x : v) x = read_f64();
    return v;
  }

  std::vector<std::uint64_t> read_u64_vec() {
    const std::uint64_t n = read_u64();
    std::vector<std::uint64_t> v(static_cast<std::size_t>(n));
    for (auto& x : v) x = read_u64();
    return v;
  }

  bool exhausted() const { return pos_ == bytes_.size(); }
  std::size_t remaining() const { return bytes_.size() - pos_; }

 private:
  template <typename T>
  T read_pod() {
    require(sizeof(T));
    T v;
    std::memcpy(&v, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  void require(std::uint64_t n) {
    if (n > bytes_.size() - pos_)
      throw std::out_of_range("ByteReader: truncated input");
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace drlhmd::util
