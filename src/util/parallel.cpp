#include "util/parallel.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "util/arena.hpp"

namespace drlhmd::util {
namespace {

thread_local bool tl_in_region = false;

std::atomic<ParallelObserver*> g_observer{nullptr};

std::size_t env_thread_count() {
  if (const char* env = std::getenv("DRLHMD_THREADS")) {
    const long v = std::atol(env);
    if (v >= 1) return std::min<std::size_t>(static_cast<std::size_t>(v), 256);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// Region-at-a-time pool: run_region publishes one chunked region, workers
/// and the caller claim chunks from a shared atomic cursor, and the caller
/// blocks until every chunk has executed.  One region is in flight at a
/// time (concurrent outer callers fall back to inline execution), which
/// keeps the scheduler trivial and the chunk->thread mapping irrelevant to
/// results.
class ThreadPool {
 public:
  static ThreadPool& instance() {
    static ThreadPool* pool = new ThreadPool(env_thread_count());
    return *pool;
  }

  explicit ThreadPool(std::size_t n_threads) { spawn(n_threads); }

  ~ThreadPool() { join_workers(); }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return n_threads_;
  }

  void resize(std::size_t n_threads) {
    std::lock_guard<std::mutex> submit_lock(submit_mu_);
    join_workers();
    spawn(n_threads);
  }

  ParallelStats stats() const {
    ParallelStats s;
    s.threads = size();
    s.regions = regions_.load(std::memory_order_relaxed);
    s.serial_regions = serial_regions_.load(std::memory_order_relaxed);
    s.chunks = chunks_.load(std::memory_order_relaxed);
    s.peak_region_chunks = peak_chunks_.load(std::memory_order_relaxed);
    return s;
  }

  void note_serial_region() {
    serial_regions_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Run fn(0..n_chunks-1) across the pool; rethrows the first chunk
  /// exception on the caller.  Falls back to inline execution when another
  /// caller already holds the pool.  The one in-flight region lives in a
  /// reusable member slot (no per-region heap allocation): before rewriting
  /// the slot the submitter drains stragglers from the previous region —
  /// workers that claimed no chunk but are still inside execute() reading
  /// the slot's plain fields — by spinning on the active-worker count.
  void run_region(std::size_t n_chunks, detail::ChunkFnRef fn) {
    std::unique_lock<std::mutex> submit_lock(submit_mu_, std::try_to_lock);
    if (!submit_lock.owns_lock()) {
      run_inline(n_chunks, fn);
      return;
    }

    regions_.fetch_add(1, std::memory_order_relaxed);
    chunks_.fetch_add(n_chunks, std::memory_order_relaxed);
    std::uint64_t peak = peak_chunks_.load(std::memory_order_relaxed);
    while (n_chunks > peak &&
           !peak_chunks_.compare_exchange_weak(peak, n_chunks,
                                               std::memory_order_relaxed)) {
    }

    // Drain workers still touching the slot from the previous region.  The
    // acquire pairs with the release decrement in worker_loop, ordering
    // their last reads before our writes.  New workers cannot enter: the
    // wait predicate requires region_ != nullptr, and it is still null.
    while (active_.load(std::memory_order_acquire) != 0)
      std::this_thread::yield();

    Region& region = region_slot_;
    region.fn = fn;
    region.n_chunks = n_chunks;
    region.next.store(0, std::memory_order_relaxed);
    region.done.store(0, std::memory_order_relaxed);
    region.error = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      region_ = &region;
    }
    work_cv_.notify_all();

    execute(region);  // the caller is a full participant

    {
      std::unique_lock<std::mutex> lock(mu_);
      done_cv_.wait(lock, [&] {
        return region.done.load(std::memory_order_acquire) == n_chunks;
      });
      region_ = nullptr;
    }
    if (region.error) std::rethrow_exception(region.error);
  }

  static void run_inline(std::size_t n_chunks, detail::ChunkFnRef fn) {
    const bool was_in_region = tl_in_region;
    tl_in_region = true;
    try {
      for (std::size_t c = 0; c < n_chunks; ++c) fn(c);
    } catch (...) {
      tl_in_region = was_in_region;
      throw;
    }
    tl_in_region = was_in_region;
  }

 private:
  struct Region {
    detail::ChunkFnRef fn;
    std::size_t n_chunks = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex error_mu;
    std::exception_ptr error;
  };

  void spawn(std::size_t n_threads) {
    n_threads = std::max<std::size_t>(1, n_threads);
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = false;
      n_threads_ = n_threads;
    }
    for (std::size_t i = 0; i + 1 < n_threads; ++i)
      workers_.emplace_back([this] { worker_loop(); });
  }

  void join_workers() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (auto& w : workers_) w.join();
    workers_.clear();
  }

  void worker_loop() {
    // Pre-warm this worker's scratch arena before it can join any region:
    // chunk assignment is a racing atomic cursor, so a worker may sit out
    // a caller's warm-up passes entirely and first claim a chunk inside a
    // steady-state serving region.  Paying the thread_local registration
    // and the first 64 KB chunk here (a cold path) keeps that first claim
    // heap-silent, preserving the zero-allocation property regardless of
    // which thread the cursor hands each chunk to.
    {
      ArenaScope warm(scratch_arena());
      (void)warm.alloc<std::byte>(1);
    }
    for (;;) {
      Region* region = nullptr;
      {
        std::unique_lock<std::mutex> lock(mu_);
        work_cv_.wait(lock, [&] {
          return stop_ ||
                 (region_ != nullptr &&
                  region_->next.load(std::memory_order_relaxed) <
                      region_->n_chunks);
        });
        if (stop_) return;
        region = region_;
        // Counted before mu_ is released so the next submitter's drain
        // cannot miss us while we still hold a reference to the slot.
        active_.fetch_add(1, std::memory_order_relaxed);
      }
      execute(*region);
      active_.fetch_sub(1, std::memory_order_release);
    }
  }

  void execute(Region& region) {
    std::size_t c;
    while ((c = region.next.fetch_add(1, std::memory_order_relaxed)) <
           region.n_chunks) {
      tl_in_region = true;
      try {
        region.fn(c);
      } catch (...) {
        std::lock_guard<std::mutex> lock(region.error_mu);
        if (!region.error) region.error = std::current_exception();
      }
      tl_in_region = false;
      if (region.done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          region.n_chunks) {
        { std::lock_guard<std::mutex> lock(mu_); }
        done_cv_.notify_all();
      }
    }
  }

  mutable std::mutex mu_;
  std::mutex submit_mu_;  // serializes outer regions
  std::condition_variable work_cv_, done_cv_;
  std::vector<std::thread> workers_;
  Region region_slot_;          // reused across regions; see run_region
  Region* region_ = nullptr;    // published slot, guarded by mu_
  std::atomic<std::size_t> active_{0};  // workers inside execute()
  std::size_t n_threads_ = 1;
  bool stop_ = false;

  std::atomic<std::uint64_t> regions_{0};
  std::atomic<std::uint64_t> serial_regions_{0};
  std::atomic<std::uint64_t> chunks_{0};
  std::atomic<std::uint64_t> peak_chunks_{0};
};

/// RAII wrapper around the installed observer's begin/end pair.
class ObserverScope {
 public:
  ObserverScope(const char* label, std::size_t n_chunks, std::size_t threads) {
    // Nested regions are inline implementation detail — not observed.
    if (label == nullptr || tl_in_region) return;
    observer_ = g_observer.load(std::memory_order_acquire);
    if (observer_ != nullptr)
      token_ = observer_->region_begin(label, n_chunks, threads);
  }
  ~ObserverScope() {
    if (observer_ != nullptr) observer_->region_end(token_);
  }
  ObserverScope(const ObserverScope&) = delete;
  ObserverScope& operator=(const ObserverScope&) = delete;

  /// Observer to notify per chunk, or nullptr when the region is either
  /// unobserved or the observer declined it (null token).
  ParallelObserver* chunk_observer() const {
    return token_ != nullptr ? observer_ : nullptr;
  }
  void* token() const { return token_; }

 private:
  ParallelObserver* observer_ = nullptr;
  void* token_ = nullptr;
};

}  // namespace

std::size_t parallel_thread_count() { return ThreadPool::instance().size(); }

void set_parallel_threads(std::size_t n) {
  ThreadPool::instance().resize(n == 0 ? env_thread_count() : std::min<std::size_t>(n, 256));
}

bool in_parallel_region() { return tl_in_region; }

bool pin_current_thread(std::size_t cpu) {
#if defined(__linux__)
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t target = hw == 0 ? 0 : cpu % hw;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(target, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

ParallelStats parallel_stats() { return ThreadPool::instance().stats(); }

void set_parallel_observer(ParallelObserver* observer) {
  g_observer.store(observer, std::memory_order_release);
}

std::size_t parallel_resolve_grain(std::size_t n, std::size_t grain) {
  if (grain > 0) return grain;
  return std::max<std::size_t>(1, n / 64);
}

namespace detail {

void run_chunks(const char* label, std::size_t n_chunks, ChunkFnRef chunk_fn) {
  if (n_chunks == 0) return;
  ThreadPool& pool = ThreadPool::instance();
  const std::size_t threads = pool.size();
  ObserverScope scope(label, n_chunks, threads);

  // Per-chunk timing only when an observer accepted the region; otherwise
  // the hot path runs the caller's functor directly with zero wrapping.
  // The wrapper is a stack lambda referenced through ChunkFnRef — no
  // std::function, no heap, valid for the full extent of this call.
  ParallelObserver* observer = scope.chunk_observer();
  void* token = scope.token();
  auto timed = [chunk_fn, observer, token](std::size_t c) {
    const auto t0 = std::chrono::steady_clock::now();
    chunk_fn(c);
    const double us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    observer->chunk_done(token, c, us);
  };
  const ChunkFnRef body = observer != nullptr ? ChunkFnRef(timed) : chunk_fn;

  if (tl_in_region || n_chunks == 1 || threads <= 1) {
    pool.note_serial_region();
    ThreadPool::run_inline(n_chunks, body);
    return;
  }
  pool.run_region(n_chunks, body);
}

}  // namespace detail
}  // namespace drlhmd::util
