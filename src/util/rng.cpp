#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace drlhmd::util {
namespace {

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) {
    word = splitmix64(s);
    s += 0x9E3779B97F4A7C15ULL;
  }
  has_cached_normal_ = false;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::next_below: bound must be > 0");
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? next() : next_below(span));
}

double Rng::uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::exponential(double rate) {
  if (rate <= 0.0) throw std::invalid_argument("Rng::exponential: rate must be > 0");
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / rate;
}

double Rng::pareto(double x_m, double alpha) {
  if (x_m <= 0.0 || alpha <= 0.0)
    throw std::invalid_argument("Rng::pareto: x_m and alpha must be > 0");
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return x_m / std::pow(u, 1.0 / alpha);
}

std::size_t Rng::categorical(std::span<const double> weights) {
  if (weights.empty()) throw std::invalid_argument("Rng::categorical: empty weights");
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("Rng::categorical: negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("Rng::categorical: zero total weight");
  double target = uniform() * total;
  for (std::size_t i = 0; i + 1 < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;
}

std::uint64_t Rng::geometric(double p) {
  if (p <= 0.0 || p > 1.0) throw std::invalid_argument("Rng::geometric: p out of (0,1]");
  if (p == 1.0) return 0;
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return static_cast<std::uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

std::uint64_t Rng::zipf(std::uint64_t n, double s) {
  if (n == 0) throw std::invalid_argument("Rng::zipf: n must be > 0");
  if (s <= 1.0) throw std::invalid_argument("Rng::zipf: exponent s must be > 1");
  if (n == 1) return 0;
  // Rejection-inversion (Hormann & Derflinger) is overkill for our simulator
  // sizes; use the classic rejection sampler over the Riemann tail bound.
  const double b = std::pow(2.0, s - 1.0);
  for (;;) {
    const double u = 1.0 - uniform();  // (0, 1]
    const double v = uniform();
    const double x = std::floor(std::pow(u, -1.0 / (s - 1.0)));
    if (x < 1.0 || x > static_cast<double>(n)) continue;
    const double t = std::pow(1.0 + 1.0 / x, s - 1.0);
    if (v * x * (t - 1.0) / (b - 1.0) <= t / b) {
      return static_cast<std::uint64_t>(x) - 1;
    }
  }
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
  if (k > n) throw std::invalid_argument("Rng::sample_without_replacement: k > n");
  std::vector<std::size_t> pool(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(next_below(n - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

Rng Rng::split() {
  Rng child;
  child.state_ = {next(), next(), next(), next()};
  child.has_cached_normal_ = false;
  return child;
}

}  // namespace drlhmd::util
