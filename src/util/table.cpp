#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace drlhmd::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

Table& Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size())
    throw std::invalid_argument("Table::add_row: column count mismatch");
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::pct(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, v * 100.0);
  return buf;
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c] << std::string(widths[c] - row[c].size(), ' ');
      out << (c + 1 == row.size() ? "\n" : "  ");
    }
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      out << row[c] << (c + 1 == row.size() ? "\n" : ",");
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string banner(const std::string& title) {
  const std::string bar(title.size() + 8, '=');
  return bar + "\n==  " + title + "  ==\n" + bar + "\n";
}

}  // namespace drlhmd::util
