// Read-only memory-mapped file (POSIX mmap).
//
// The out-of-core data plane's storage primitive: a shard file opens as a
// byte span without reading it into heap memory — the kernel pages data in
// on first touch and evicts it under memory pressure, so a corpus directory
// many times larger than RAM behaves like a (slower) in-memory buffer.
// Move-only RAII: the mapping lives exactly as long as the object, and every
// span handed out from data() dies with it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace drlhmd::util {

class MmapFile {
 public:
  MmapFile() = default;
  /// Map the whole file read-only.  Throws std::runtime_error when the file
  /// cannot be opened, stat'ed, or mapped.  An empty file maps to an empty
  /// span (no mapping is created).
  explicit MmapFile(const std::string& path);
  ~MmapFile();

  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  bool mapped() const { return data_ != nullptr; }
  const std::uint8_t* data() const { return data_; }
  std::size_t size() const { return size_; }
  std::span<const std::uint8_t> bytes() const { return {data_, size_}; }
  const std::string& path() const { return path_; }

 private:
  void reset() noexcept;

  std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  std::string path_;
};

}  // namespace drlhmd::util
