#include "util/artifact.hpp"

#include <array>
#include <stdexcept>

#include "util/serialize.hpp"

namespace drlhmd::util {
namespace {

constexpr std::array<std::uint8_t, 4> kMagic = {'D', 'R', 'L', 'A'};
constexpr std::uint8_t kEnvelopeVersion = 1;

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes) {
  const auto& table = crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::uint8_t b : bytes) crc = table[(crc ^ b) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

std::vector<std::uint8_t> wrap_artifact(const std::string& kind,
                                        std::uint32_t version,
                                        std::span<const std::uint8_t> payload) {
  if (kind.empty())
    throw std::invalid_argument("wrap_artifact: empty kind tag");
  ByteWriter w;
  for (std::uint8_t m : kMagic) w.write_u8(m);
  w.write_u8(kEnvelopeVersion);
  w.write_string(kind);
  w.write_u32(version);
  w.write_bytes(payload);
  w.write_u32(crc32(payload));
  return w.take();
}

Artifact unwrap_artifact(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  for (std::uint8_t m : kMagic) {
    if (r.read_u8() != m)
      throw std::invalid_argument("unwrap_artifact: bad magic (not an artifact)");
  }
  if (r.read_u8() != kEnvelopeVersion)
    throw std::invalid_argument("unwrap_artifact: unsupported envelope version");
  Artifact artifact;
  artifact.kind = r.read_string();
  artifact.version = r.read_u32();
  artifact.payload = r.read_bytes();
  const std::uint32_t stored_crc = r.read_u32();
  if (!r.exhausted())
    throw std::invalid_argument("unwrap_artifact: trailing bytes after envelope");
  if (crc32(artifact.payload) != stored_crc)
    throw std::invalid_argument("unwrap_artifact: CRC mismatch (artifact corrupt)");
  return artifact;
}

}  // namespace drlhmd::util
