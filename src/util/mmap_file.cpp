#include "util/mmap_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace drlhmd::util {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error("MmapFile: " + what + " '" + path +
                           "': " + std::strerror(errno));
}

}  // namespace

MmapFile::MmapFile(const std::string& path) : path_(path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) fail("cannot open", path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    fail("cannot stat", path);
  }
  const std::size_t size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return;  // empty file: valid, empty span, nothing to map
  }
  void* mem = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference to the file
  if (mem == MAP_FAILED) fail("cannot mmap", path);
  data_ = static_cast<std::uint8_t*>(mem);
  size_ = size;
}

MmapFile::~MmapFile() { reset(); }

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      path_(std::move(other.path_)) {
  other.path_.clear();
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    reset();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    path_ = std::move(other.path_);
    other.path_.clear();
  }
  return *this;
}

void MmapFile::reset() noexcept {
  if (data_ != nullptr) ::munmap(data_, size_);
  data_ = nullptr;
  size_ = 0;
}

}  // namespace drlhmd::util
