// Bump/pool arena for steady-state zero-allocation hot paths.
//
// An Arena hands out pointer-bumped storage from a chain of heap chunks.
// Chunks are never freed before the arena dies and never shrink, so once a
// workload's peak footprint has been touched every later pass through the
// same code runs with zero heap traffic: ArenaScope marks the cursor on
// entry and rewinds it on exit, returning the bytes to the arena without
// returning them to the allocator.
//
// The serving tier uses one scratch arena per thread (scratch_arena(), a
// thread_local), so DetectionRuntime::process_batch and every vectorized
// predict_proba_batch override can take per-call scratch (flag vectors,
// quantized code tiles, activation ping-pong buffers) on any DRLHMD_THREADS
// worker without a lock and without malloc.  Arenas are single-threaded by
// design; only the stats counters are atomic so arena_stats() can aggregate
// live arenas from another thread for telemetry (drlhmd.arena.* gauges).
//
// Lifetime rules (see DESIGN.md §12):
//   * storage from scope.alloc<T>() is valid until that ArenaScope exits;
//   * nested scopes rewind LIFO — never hold an outer span across an inner
//     scope's storage and assume the inner bytes survive;
//   * only trivially-destructible T: rewind runs no destructors.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace drlhmd::util {

/// Aggregated arena activity (live + retired thread arenas).
struct ArenaStats {
  std::uint64_t arenas = 0;             // currently registered (live) arenas
  std::uint64_t capacity_bytes = 0;     // sum of live chunk capacity
  std::uint64_t high_water_bytes = 0;   // max in-use bytes of any arena, ever
  std::uint64_t scope_reuses = 0;       // scope rewinds served from warm chunks
  std::uint64_t chunk_allocations = 0;  // upstream heap chunks ever taken
};

class Arena {
 public:
  /// `initial_capacity` = 0 defers the first chunk to the first allocation.
  explicit Arena(std::size_t initial_capacity = 0);
  ~Arena();
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocate `bytes` aligned to `align` (power of two).  Grows by
  /// doubling chunks when the warm chain is exhausted; a deterministic
  /// allocation sequence therefore stops growing after its first pass.
  void* allocate(std::size_t bytes, std::size_t align);

  /// Typed span of n default-uninitialized T.  Rewind runs no destructors,
  /// so T must be trivially destructible (and trivially constructible to
  /// make "uninitialized" meaningful).
  template <typename T>
  std::span<T> alloc(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T> &&
                      std::is_trivially_default_constructible_v<T>,
                  "Arena::alloc needs trivial T: rewind runs no destructors");
    if (n == 0) return {};
    return {static_cast<T*>(allocate(n * sizeof(T), alignof(T))), n};
  }

  /// Cursor snapshot: (chunk index, offset inside it).
  struct Mark {
    std::size_t chunk = 0;
    std::size_t offset = 0;
  };
  Mark mark() const { return {active_, offset_}; }
  /// LIFO rewind to a snapshot taken on this arena; chunks stay warm.
  void rewind(Mark m);
  /// Rewind to empty (keeps every chunk).
  void reset() { rewind({0, 0}); }

  std::size_t used() const;
  std::size_t capacity() const {
    return capacity_.load(std::memory_order_relaxed);
  }
  std::size_t high_water() const {
    return high_water_.load(std::memory_order_relaxed);
  }
  std::uint64_t chunk_allocations() const {
    return chunk_allocs_.load(std::memory_order_relaxed);
  }
  std::uint64_t scope_reuses() const {
    return scope_reuses_.load(std::memory_order_relaxed);
  }
  /// True when p points into arena-owned storage (test/debug aid).
  bool owns(const void* p) const;

 private:
  friend class ArenaScope;
  friend Arena& scratch_arena();

  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void add_chunk(std::size_t min_bytes);
  void note_high_water();

  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;  // chunk currently being bumped
  std::size_t offset_ = 0;  // bump cursor inside chunks_[active_]
  // Stats (capacity included) are written by the owning thread, read by
  // arena_stats(): atomics with relaxed ordering (monotonic counters, no
  // cross-field invariants).
  std::atomic<std::size_t> capacity_{0};
  std::atomic<std::size_t> high_water_{0};
  std::atomic<std::uint64_t> chunk_allocs_{0};
  std::atomic<std::uint64_t> scope_reuses_{0};
  bool registered_ = false;  // set for scratch arenas; see arena.cpp registry
};

/// RAII cursor scope: marks on entry, rewinds on exit.  The unit of
/// "reuse" in the stats — every scope after the warm-up pass is a free
/// rewind instead of a round-trip through the allocator.
class ArenaScope {
 public:
  explicit ArenaScope(Arena& arena) : arena_(arena), mark_(arena.mark()) {}
  ~ArenaScope() {
    arena_.rewind(mark_);
    arena_.scope_reuses_.fetch_add(1, std::memory_order_relaxed);
  }
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

  template <typename T>
  std::span<T> alloc(std::size_t n) {
    return arena_.alloc<T>(n);
  }
  Arena& arena() { return arena_; }

 private:
  Arena& arena_;
  Arena::Mark mark_;
};

/// This thread's scratch arena (thread_local, lazily built, registered for
/// arena_stats()).  Pool workers and the main thread each get their own,
/// so parallel chunk bodies can take scratch without synchronization.
Arena& scratch_arena();

/// Aggregate stats over every live scratch arena plus totals carried over
/// from threads that have exited.
ArenaStats arena_stats();

}  // namespace drlhmd::util
