// Directory-backed artifact store with atomic writes.
//
// One artifact = one file `<dir>/<name>.art` holding a wrap_artifact()
// envelope.  Writes go to a `.tmp` sibling first and are renamed into
// place, so a crash mid-write never leaves a half-written artifact under a
// live name; reads re-validate the envelope (magic + CRC) on every get().
// This is the substrate Framework::save_checkpoint / resume build on.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "util/artifact.hpp"

namespace drlhmd::util {

class ArtifactStore {
 public:
  /// Opens (creating if needed) the backing directory.
  explicit ArtifactStore(std::string directory);

  const std::string& directory() const { return dir_; }

  /// Atomically persist `payload` wrapped in an envelope under `name`.
  /// Overwrites any existing artifact of the same name.
  void put(const std::string& name, const std::string& kind,
           std::uint32_t version, std::span<const std::uint8_t> payload) const;

  /// Load and validate an artifact.  Throws std::runtime_error when the
  /// file is missing and std::invalid_argument/std::out_of_range when the
  /// envelope is corrupt.
  Artifact get(const std::string& name) const;

  bool contains(const std::string& name) const;
  void remove(const std::string& name) const;

  /// Names of all artifacts in the store, sorted.
  std::vector<std::string> list() const;

  /// Filesystem path backing `name` (whether or not it exists yet).
  std::string path_for(const std::string& name) const;

 private:
  static void validate_name(const std::string& name);

  std::string dir_;
};

}  // namespace drlhmd::util
