// Deterministic pseudo-random number generation for simulation, ML and RL.
//
// All stochastic components of the library draw from Rng so that every
// experiment is reproducible from a single 64-bit seed.  The generator is
// xoshiro256** (Blackman & Vigna), seeded through splitmix64 so that even
// low-entropy seeds (0, 1, 2, ...) produce well-mixed state.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace drlhmd::util {

/// One splitmix64 step for the given state (Steele et al.): advances by the
/// golden-gamma increment and returns the mixed output.  Stateless, so it
/// doubles as a seed-mixing hash for counter-based parallel RNG streams
/// (see util::chunk_rng in parallel.hpp).
std::uint64_t splitmix64(std::uint64_t x);

/// xoshiro256** PRNG with convenience distributions.
///
/// Satisfies UniformRandomBitGenerator, so it can also be plugged into
/// <random> facilities, although the built-in distributions below are
/// preferred: they are identical across platforms, unlike libstdc++/libc++
/// distribution implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  /// Re-initialize the full 256-bit state from a 64-bit seed via splitmix64.
  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next raw 64 bits.
  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller (cached second value).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Bernoulli trial.
  bool bernoulli(double p) { return uniform() < p; }

  /// Exponential with the given rate (lambda > 0).
  double exponential(double rate);

  /// Lognormal: exp(normal(mu, sigma)).
  double lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

  /// Pareto distribution with scale x_m > 0 and shape alpha > 0.
  double pareto(double x_m, double alpha);

  /// Sample an index proportionally to the (non-negative) weights.
  std::size_t categorical(std::span<const double> weights);

  /// Geometric number of failures before first success, p in (0, 1].
  std::uint64_t geometric(double p);

  /// Zipf-distributed integer in [0, n) with exponent s (rejection sampler).
  std::uint64_t zipf(std::uint64_t n, double s);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// k distinct indices drawn uniformly from [0, n) (partial Fisher-Yates).
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

  /// Derive an independent child generator (for parallel streams).
  Rng split();

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace drlhmd::util
