#include "util/arena.hpp"

#include <algorithm>
#include <mutex>
#include <new>

namespace drlhmd::util {
namespace {

constexpr std::size_t kMinChunkBytes = 64 * 1024;

/// Registry of live scratch arenas + totals retired by exited threads.
/// Guarded by a mutex: registration and arena_stats() are cold paths.
struct ArenaRegistry {
  std::mutex mu;
  std::vector<const Arena*> live;
  std::uint64_t retired_high_water = 0;  // max over dead arenas
  std::uint64_t retired_scope_reuses = 0;
  std::uint64_t retired_chunk_allocs = 0;

  static ArenaRegistry& instance() {
    // Leaked: thread_local scratch arenas unregister during thread exit,
    // which can outlive static destruction order.
    static ArenaRegistry* reg = new ArenaRegistry();
    return *reg;
  }

  void add(const Arena* arena) {
    std::lock_guard<std::mutex> lock(mu);
    live.push_back(arena);
  }

  void remove(const Arena* arena) {
    std::lock_guard<std::mutex> lock(mu);
    live.erase(std::remove(live.begin(), live.end(), arena), live.end());
    retired_high_water =
        std::max<std::uint64_t>(retired_high_water, arena->high_water());
    retired_scope_reuses += arena->scope_reuses();
    retired_chunk_allocs += arena->chunk_allocations();
  }
};

}  // namespace

Arena::Arena(std::size_t initial_capacity) {
  if (initial_capacity > 0) add_chunk(initial_capacity);
}

Arena::~Arena() {
  if (registered_) ArenaRegistry::instance().remove(this);
}

void Arena::add_chunk(std::size_t min_bytes) {
  const std::size_t last = chunks_.empty() ? 0 : chunks_.back().size;
  const std::size_t size = std::max({min_bytes, last * 2, kMinChunkBytes});
  Chunk chunk;
  chunk.data = std::make_unique<std::byte[]>(size);
  chunk.size = size;
  capacity_.fetch_add(size, std::memory_order_relaxed);
  chunks_.push_back(std::move(chunk));
  chunk_allocs_.fetch_add(1, std::memory_order_relaxed);
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  if (bytes == 0) bytes = 1;
  for (;;) {
    if (active_ < chunks_.size()) {
      Chunk& chunk = chunks_[active_];
      const std::size_t base =
          reinterpret_cast<std::size_t>(chunk.data.get());
      const std::size_t aligned = (base + offset_ + (align - 1)) & ~(align - 1);
      const std::size_t new_offset = aligned - base + bytes;
      if (new_offset <= chunk.size) {
        offset_ = new_offset;
        note_high_water();
        return reinterpret_cast<void*>(aligned);
      }
      // Exhausted: advance into the next warm chunk (or grow below).  The
      // tail of this chunk is wasted until the next rewind — a deterministic
      // allocation sequence wastes the same tail every pass, so the chain
      // still converges to zero heap traffic.
      if (active_ + 1 < chunks_.size()) {
        ++active_;
        offset_ = 0;
        continue;
      }
    }
    add_chunk(bytes + align);
    active_ = chunks_.size() - 1;
    offset_ = 0;
  }
}

void Arena::rewind(Mark m) {
  active_ = m.chunk;
  offset_ = m.offset;
}

std::size_t Arena::used() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < active_ && i < chunks_.size(); ++i)
    total += chunks_[i].size;
  return total + offset_;
}

void Arena::note_high_water() {
  const std::size_t in_use = used();
  std::size_t seen = high_water_.load(std::memory_order_relaxed);
  while (in_use > seen &&
         !high_water_.compare_exchange_weak(seen, in_use,
                                            std::memory_order_relaxed)) {
  }
}

bool Arena::owns(const void* p) const {
  const auto* byte = static_cast<const std::byte*>(p);
  for (const Chunk& chunk : chunks_)
    if (byte >= chunk.data.get() && byte < chunk.data.get() + chunk.size)
      return true;
  return false;
}

Arena& scratch_arena() {
  thread_local struct Scratch {
    Arena arena;
    Scratch() {
      arena.registered_ = true;
      ArenaRegistry::instance().add(&arena);
    }
  } scratch;
  return scratch.arena;
}

ArenaStats arena_stats() {
  ArenaRegistry& reg = ArenaRegistry::instance();
  std::lock_guard<std::mutex> lock(reg.mu);
  ArenaStats stats;
  stats.arenas = reg.live.size();
  stats.high_water_bytes = reg.retired_high_water;
  stats.scope_reuses = reg.retired_scope_reuses;
  stats.chunk_allocations = reg.retired_chunk_allocs;
  for (const Arena* arena : reg.live) {
    stats.capacity_bytes += arena->capacity();
    stats.high_water_bytes =
        std::max<std::uint64_t>(stats.high_water_bytes, arena->high_water());
    stats.scope_reuses += arena->scope_reuses();
    stats.chunk_allocations += arena->chunk_allocations();
  }
  return stats;
}

}  // namespace drlhmd::util
