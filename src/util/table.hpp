// Plain-text table rendering for the benchmark harness: every reproduced
// paper table/figure prints through this so the output format is uniform.
#pragma once

#include <string>
#include <vector>

namespace drlhmd::util {

/// Column-aligned ASCII table. Cells are strings; numeric helpers format
/// with fixed precision. Rendering pads every column to its widest cell.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  Table& add_row(std::vector<std::string> cells);

  /// Format helpers.
  static std::string fmt(double v, int precision = 2);
  static std::string pct(double v, int precision = 1);  // 0.961 -> "96.1%"

  std::size_t rows() const { return rows_.size(); }

  /// Render with a separator line under the header.
  std::string to_string() const;

  /// Render as comma-separated values (for piping into plotting scripts).
  std::string to_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Print a section banner, used by bench binaries to label paper artifacts
/// ("Table 2", "Figure 3(b)", ...).
std::string banner(const std::string& title);

}  // namespace drlhmd::util
