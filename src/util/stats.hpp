// Small numerically careful statistics toolkit used across the simulator,
// the feature-engineering stage (mutual information) and the metric monitor.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace drlhmd::util {

/// Streaming mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Population variance (n denominator); 0 for fewer than 1 sample.
  double variance() const;
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double sample_variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);   // population
double stddev(std::span<const double> xs);     // population
double median(std::vector<double> xs);         // by-value: sorts a copy
/// Linear-interpolated quantile, q in [0, 1].
double quantile(std::vector<double> xs, double q);
/// Pearson correlation coefficient; 0 if either side is constant.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Shannon entropy (nats) of a discrete distribution given by counts.
double entropy_from_counts(std::span<const std::size_t> counts);

/// Equal-width histogram over [lo, hi] with `bins` buckets; values outside
/// the range are clamped into the edge buckets.
std::vector<std::size_t> histogram(std::span<const double> xs, double lo, double hi,
                                   std::size_t bins);

}  // namespace drlhmd::util
