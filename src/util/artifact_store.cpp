#include "util/artifact_store.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace drlhmd::util {

namespace fs = std::filesystem;

namespace {
constexpr const char* kExtension = ".art";
}

ArtifactStore::ArtifactStore(std::string directory) : dir_(std::move(directory)) {
  if (dir_.empty())
    throw std::invalid_argument("ArtifactStore: empty directory");
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec || !fs::is_directory(dir_))
    throw std::runtime_error("ArtifactStore: cannot create directory " + dir_);
}

void ArtifactStore::validate_name(const std::string& name) {
  if (name.empty())
    throw std::invalid_argument("ArtifactStore: empty artifact name");
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
    if (!ok)
      throw std::invalid_argument("ArtifactStore: invalid artifact name '" +
                                  name + "'");
  }
  if (name.front() == '.')
    throw std::invalid_argument("ArtifactStore: artifact name cannot start with '.'");
}

std::string ArtifactStore::path_for(const std::string& name) const {
  validate_name(name);
  return (fs::path(dir_) / (name + kExtension)).string();
}

void ArtifactStore::put(const std::string& name, const std::string& kind,
                        std::uint32_t version,
                        std::span<const std::uint8_t> payload) const {
  const std::string final_path = path_for(name);
  const std::string tmp_path = final_path + ".tmp";
  const std::vector<std::uint8_t> bytes = wrap_artifact(kind, version, payload);
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out)
      throw std::runtime_error("ArtifactStore: cannot open " + tmp_path);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out)
      throw std::runtime_error("ArtifactStore: short write to " + tmp_path);
  }
  // Atomic publish: rename within one directory replaces the target as a
  // single operation, so readers see either the old or the new artifact.
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    fs::remove(tmp_path, ec);
    throw std::runtime_error("ArtifactStore: cannot publish " + final_path);
  }
}

Artifact ArtifactStore::get(const std::string& name) const {
  const std::string path = path_for(name);
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw std::runtime_error("ArtifactStore: missing artifact '" + name +
                             "' (" + path + ")");
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  try {
    return unwrap_artifact(bytes);
  } catch (const std::exception& e) {
    throw std::invalid_argument("ArtifactStore: artifact '" + name +
                                "' is corrupt: " + e.what());
  }
}

bool ArtifactStore::contains(const std::string& name) const {
  std::error_code ec;
  return fs::is_regular_file(path_for(name), ec);
}

void ArtifactStore::remove(const std::string& name) const {
  std::error_code ec;
  fs::remove(path_for(name), ec);
}

std::vector<std::string> ArtifactStore::list() const {
  std::vector<std::string> names;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (!entry.is_regular_file()) continue;
    const fs::path p = entry.path();
    if (p.extension() != kExtension) continue;
    names.push_back(p.stem().string());
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace drlhmd::util
