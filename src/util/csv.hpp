// Minimal CSV reader/writer for dataset import/export.
//
// The dataset builder can dump collected HPC samples to CSV (one row per
// sampling window) so experiments can be inspected or re-used outside the
// library, mirroring the paper's perf-script data collection flow.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace drlhmd::util {

struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  std::size_t column_index(const std::string& name) const;  // throws if absent
};

/// Parse CSV text. Supports quoted fields with embedded commas/quotes and
/// both \n and \r\n line endings. The first record is the header.
CsvDocument parse_csv(const std::string& text);

/// Serialize, quoting any field that needs it.
std::string write_csv(const CsvDocument& doc);

CsvDocument read_csv_file(const std::string& path);
void write_csv_file(const CsvDocument& doc, const std::string& path);

}  // namespace drlhmd::util
