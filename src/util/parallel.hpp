// Deterministic parallel execution layer.
//
// A lazily-initialized global thread pool (width from DRLHMD_THREADS,
// default std::thread::hardware_concurrency, 1 = fully serial) executes
// statically-chunked index ranges.  Determinism is the design center:
//
//   * Chunk layout depends only on (range size, grain) — never on the
//     thread count — so per-chunk work assignment is reproducible.
//   * Results are written to pre-sized slots indexed by the loop variable;
//     no reduction order ever depends on scheduling.
//   * Stochastic chunk bodies draw from counter-seeded Rng streams
//     (chunk_rng: splitmix64 on base_seed ^ chunk_index), giving every
//     chunk an independent, scheduling-invariant stream.
//
// Together these make parallel and serial runs bitwise identical at any
// DRLHMD_THREADS value.  Nested calls (a parallel_for issued from inside a
// chunk) degrade to inline serial execution over the same chunk layout, so
// composition is deadlock-free and still deterministic.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "util/rng.hpp"

namespace drlhmd::util {

/// Effective pool width (worker threads + the calling thread), >= 1.
/// First call initializes the pool from DRLHMD_THREADS / hardware size.
std::size_t parallel_thread_count();

/// Re-size the pool (bench/test hook; 0 = re-read DRLHMD_THREADS/hardware).
/// Must not be called from inside a parallel region.
void set_parallel_threads(std::size_t n);

/// True while the current thread is executing a chunk of a parallel region.
bool in_parallel_region();

/// Best-effort: pin the calling thread to CPU `cpu % hardware_concurrency`.
/// Returns true when the affinity call succeeded, false on platforms
/// without thread affinity or when the kernel rejects the mask.  Used by
/// the serving tier's drain workers (ServeConfig.pin_workers) to keep each
/// worker's staging tile and ring cachelines resident on one core.
bool pin_current_thread(std::size_t cpu);

/// Cumulative pool activity since process start (monotonic, thread-safe).
struct ParallelStats {
  std::size_t threads = 1;           // current pool width
  std::uint64_t regions = 0;         // regions dispatched to the pool
  std::uint64_t serial_regions = 0;  // regions executed inline (serial/nested)
  std::uint64_t chunks = 0;          // chunk tasks executed via the pool
  std::uint64_t peak_region_chunks = 0;  // largest region so far
};
ParallelStats parallel_stats();

/// Hook for the observability layer (obs::Telemetry installs one; util
/// cannot depend on obs).  `begin` runs on the calling thread before the
/// region is dispatched and its return value is handed back to `end` after
/// the region completes — an RAII-shaped pair for spans + gauges.
class ParallelObserver {
 public:
  virtual ~ParallelObserver() = default;
  virtual void* region_begin(const char* label, std::size_t n_chunks,
                             std::size_t n_threads) = 0;
  /// Called once per completed chunk of an observed region — from whichever
  /// thread ran the chunk, with the chunk's wall-clock duration.  Only fires
  /// when region_begin returned a non-null token.  Default: no-op, so the
  /// timing wrapper is skipped entirely for unobserved regions.
  virtual void chunk_done(void* token, std::size_t chunk_index,
                          double duration_us) {
    (void)token;
    (void)chunk_index;
    (void)duration_us;
  }
  virtual void region_end(void* token) = 0;
};
/// Install (or clear with nullptr) the process-wide observer; not owned.
void set_parallel_observer(ParallelObserver* observer);

/// Counter-seeded independent RNG stream for one chunk of a parallel
/// region: Rng(splitmix64(base_seed ^ chunk_index)).
inline Rng chunk_rng(std::uint64_t base_seed, std::uint64_t chunk_index) {
  return Rng(splitmix64(base_seed ^ chunk_index));
}

/// Chunk size actually used for a range of n items: `grain` when given,
/// otherwise n/64 (min 1).  Depends only on (n, grain) — deterministic.
std::size_t parallel_resolve_grain(std::size_t n, std::size_t grain);

namespace detail {

/// Non-owning, trivially-copyable reference to a `void(std::size_t)`
/// callable: a context pointer plus a call thunk.  Unlike std::function it
/// never heap-allocates, which keeps region dispatch malloc-free — the
/// serving tier asserts zero allocations in steady-state process_batch.
/// The referenced callable must outlive every invocation (run_chunks only
/// invokes it before returning, so stack lambdas are safe).
class ChunkFnRef {
 public:
  ChunkFnRef() = default;
  template <typename Fn,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<Fn>, ChunkFnRef> &&
                std::is_invocable_v<Fn&, std::size_t>>>
  ChunkFnRef(Fn&& fn)  // NOLINT(google-explicit-constructor)
      : ctx_(const_cast<void*>(
            static_cast<const void*>(std::addressof(fn)))),
        call_([](void* ctx, std::size_t c) {
          (*static_cast<std::remove_reference_t<Fn>*>(ctx))(c);
        }) {}

  void operator()(std::size_t c) const { call_(ctx_, c); }
  explicit operator bool() const { return call_ != nullptr; }

 private:
  void* ctx_ = nullptr;
  void (*call_)(void*, std::size_t) = nullptr;
};

/// Execute chunk_fn(0..n_chunks-1), on the pool when profitable, inline
/// otherwise (pool width 1, single chunk, or nested region).  Exceptions
/// from chunks are captured and the first one rethrown on the caller.
void run_chunks(const char* label, std::size_t n_chunks, ChunkFnRef chunk_fn);

}  // namespace detail

/// Chunk-granular loop: fn(chunk_index, chunk_begin, chunk_end) for each
/// statically-assigned chunk of [begin, end).  The chunk index is the one
/// to feed chunk_rng.
template <typename Fn>
void parallel_for_chunks(const char* label, std::size_t begin, std::size_t end,
                         std::size_t grain, Fn&& fn) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  const std::size_t g = parallel_resolve_grain(n, grain);
  const std::size_t n_chunks = (n + g - 1) / g;
  detail::run_chunks(label, n_chunks, [&](std::size_t c) {
    const std::size_t b = begin + c * g;
    fn(c, b, std::min(end, b + g));
  });
}

/// Element-granular loop: fn(i) for i in [begin, end), grouped into chunks
/// of `grain` (0 = auto).
template <typename Fn>
void parallel_for(const char* label, std::size_t begin, std::size_t end,
                  std::size_t grain, Fn&& fn) {
  parallel_for_chunks(label, begin, end, grain,
                      [&](std::size_t, std::size_t b, std::size_t e) {
                        for (std::size_t i = b; i < e; ++i) fn(i);
                      });
}

template <typename Fn>
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  Fn&& fn) {
  parallel_for(nullptr, begin, end, grain, std::forward<Fn>(fn));
}

/// Map fn over [begin, end) into a pre-sized vector (slot i-begin receives
/// fn(i)); result order is index order, independent of scheduling.
template <typename Fn>
auto parallel_map(const char* label, std::size_t begin, std::size_t end,
                  std::size_t grain, Fn&& fn) {
  using R = std::decay_t<std::invoke_result_t<Fn&, std::size_t>>;
  std::vector<R> out(end > begin ? end - begin : 0);
  parallel_for(label, begin, end, grain,
               [&](std::size_t i) { out[i - begin] = fn(i); });
  return out;
}

template <typename Fn>
auto parallel_map(std::size_t begin, std::size_t end, std::size_t grain,
                  Fn&& fn) {
  return parallel_map(nullptr, begin, end, grain, std::forward<Fn>(fn));
}

/// Two-stage pipelined loop.  Each statically-assigned chunk of
/// [begin, end) runs stage1(chunk, b, e) immediately followed by
/// stage2(chunk, b, e) on the same worker, with no barrier between the
/// stages: while one chunk is in stage2 (e.g. scoring), other workers run
/// stage1 (e.g. preprocessing) of later chunks.  Chunk layout depends only
/// on (range size, grain), and each chunk must touch only its own slots,
/// so results are bitwise identical at any DRLHMD_THREADS.
template <typename Stage1, typename Stage2>
void parallel_pipeline(const char* label, std::size_t begin, std::size_t end,
                       std::size_t grain, Stage1&& stage1, Stage2&& stage2) {
  parallel_for_chunks(label, begin, end, grain,
                      [&](std::size_t c, std::size_t b, std::size_t e) {
                        stage1(c, b, e);
                        stage2(c, b, e);
                      });
}

}  // namespace drlhmd::util
