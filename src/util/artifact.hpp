// Tagged, versioned, integrity-checked artifact envelope.
//
// Every persisted piece of pipeline state (trained detectors, RL agents,
// the fitted scaler, datasets, vault records, ...) is wrapped in one common
// envelope before it touches disk, so a loader can (1) identify what a blob
// is without guessing, (2) refuse format versions it does not understand,
// and (3) detect bit rot or truncation before handing the payload to a
// type-specific deserializer.  Layout (little-endian):
//
//   u8[4]  magic        "DRLA"
//   u8     envelope version (currently 1)
//   string kind         e.g. "drlhmd.ml.classifier" (u64 length + bytes)
//   u32    format version of the payload (kind-specific)
//   u64    payload length
//   u8[n]  payload
//   u32    CRC-32 of the payload
//
// The CRC catches accidental corruption; *authenticated* integrity of
// deployed models is the SHA-256 vault's job (integrity/model_vault.hpp),
// which Framework::resume checks on top of the envelope CRC.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace drlhmd::util {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of a byte span.
std::uint32_t crc32(std::span<const std::uint8_t> bytes);

/// A decoded envelope: what the blob claims to be, plus its payload.
struct Artifact {
  std::string kind;
  std::uint32_t version = 0;
  std::vector<std::uint8_t> payload;
};

/// Wrap a payload into the envelope format above.
std::vector<std::uint8_t> wrap_artifact(const std::string& kind,
                                        std::uint32_t version,
                                        std::span<const std::uint8_t> payload);

/// Parse and validate an envelope.  Throws std::invalid_argument on bad
/// magic/version/CRC and std::out_of_range on truncation.
Artifact unwrap_artifact(std::span<const std::uint8_t> bytes);

}  // namespace drlhmd::util
