#include "util/csv.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace drlhmd::util {

std::size_t CsvDocument::column_index(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i)
    if (header[i] == name) return i;
  throw std::out_of_range("CsvDocument: no column named '" + name + "'");
}

namespace {

bool needs_quoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

std::string quote(const std::string& field) {
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

CsvDocument parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> record;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&] {
    record.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_record = [&] {
    end_field();
    records.push_back(std::move(record));
    record.clear();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        field_started = true;
        break;
      case ',':
        end_field();
        field_started = true;  // the record continues
        break;
      case '\r':
        break;  // swallow; \n terminates the record
      case '\n':
        end_record();
        break;
      default:
        field += c;
        field_started = true;
        break;
    }
  }
  if (in_quotes) throw std::invalid_argument("parse_csv: unterminated quote");
  if (field_started || !field.empty() || !record.empty()) end_record();

  CsvDocument doc;
  if (records.empty()) return doc;
  doc.header = std::move(records.front());
  const std::size_t width = doc.header.size();
  for (std::size_t r = 1; r < records.size(); ++r) {
    if (records[r].size() != width) {
      std::ostringstream msg;
      msg << "parse_csv: row " << r << " has " << records[r].size()
          << " fields, expected " << width;
      throw std::invalid_argument(msg.str());
    }
    doc.rows.push_back(std::move(records[r]));
  }
  return doc;
}

std::string write_csv(const CsvDocument& doc) {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& rec) {
    for (std::size_t i = 0; i < rec.size(); ++i) {
      out << (needs_quoting(rec[i]) ? quote(rec[i]) : rec[i]);
      out << (i + 1 == rec.size() ? "\n" : ",");
    }
  };
  emit(doc.header);
  for (const auto& row : doc.rows) emit(row);
  return out.str();
}

CsvDocument read_csv_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_csv_file: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_csv(buf.str());
}

void write_csv_file(const CsvDocument& doc, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_csv_file: cannot open " + path);
  out << write_csv(doc);
}

}  // namespace drlhmd::util
