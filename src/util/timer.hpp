// Wall-clock timing helper for latency measurement (Metric Monitor inputs).
#pragma once

#include <chrono>
#include <cstdint>

namespace drlhmd::util {

/// Monotonic stopwatch.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  double elapsed_ms() const { return elapsed_seconds() * 1e3; }
  double elapsed_us() const { return elapsed_seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace drlhmd::util
