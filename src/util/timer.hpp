// Wall-clock timing helpers for latency measurement (Metric Monitor and
// telemetry inputs).
#pragma once

#include <chrono>
#include <cstdint>

namespace drlhmd::util {

/// Monotonic stopwatch.  `elapsed_*` reads time since construction/reset;
/// `lap()` reads time since the previous lap without disturbing the total,
/// so one Timer can measure both per-step and cumulative durations.
class Timer {
 public:
  Timer() : start_(clock::now()), lap_(start_) {}

  void reset() { start_ = lap_ = clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  double elapsed_ms() const { return elapsed_seconds() * 1e3; }
  double elapsed_us() const { return elapsed_seconds() * 1e6; }

  /// Seconds since the last lap() (or construction/reset), then start a
  /// new lap.  The overall start point is untouched, so elapsed_seconds()
  /// keeps reporting the total — previously callers had to copy `start_`
  /// semantics by hand with reset(), losing the cumulative reading.
  double lap() {
    const clock::time_point now = clock::now();
    const double seconds = std::chrono::duration<double>(now - lap_).count();
    lap_ = now;
    return seconds;
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
  clock::time_point lap_;
};

/// RAII accumulator: adds the scope's elapsed seconds into a double on
/// destruction.  Use for cheap always-on aggregate timing where a full
/// histogram is overkill:
///
///   double train_seconds = 0.0;
///   { ScopedTimer t(train_seconds); model.fit(data); }
class ScopedTimer {
 public:
  explicit ScopedTimer(double& accumulator) : accumulator_(accumulator) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { accumulator_ += timer_.elapsed_seconds(); }

  const Timer& timer() const { return timer_; }

 private:
  double& accumulator_;
  Timer timer_;
};

}  // namespace drlhmd::util
