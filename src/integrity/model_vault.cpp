#include "integrity/model_vault.hpp"

#include <stdexcept>

#include "util/serialize.hpp"

namespace drlhmd::integrity {

std::string ModelVault::compute_digest(const std::string& model_name,
                                       std::uint64_t timestamp,
                                       std::span<const std::uint8_t> bytes) {
  Sha256 hasher;
  hasher.update(model_name);
  hasher.update("|");
  hasher.update(std::to_string(timestamp));
  hasher.update("|");
  hasher.update(bytes);
  return to_hex(hasher.finish());
}

std::string ModelVault::deploy(const std::string& model_name,
                               std::vector<std::uint8_t> model_bytes,
                               std::uint64_t timestamp) {
  if (model_name.empty())
    throw std::invalid_argument("ModelVault::deploy: empty model name");
  VaultRecord record;
  record.model_name = model_name;
  record.deployed_at = timestamp;
  record.digest_hex = compute_digest(model_name, timestamp, model_bytes);
  record.golden_bytes = std::move(model_bytes);
  const std::string digest = record.digest_hex;
  records_[model_name] = std::move(record);
  return digest;
}

VerificationStatus ModelVault::verify(
    const std::string& model_name,
    std::span<const std::uint8_t> current_bytes) const {
  const auto it = records_.find(model_name);
  if (it == records_.end()) return VerificationStatus::kUnknownModel;
  const std::string digest =
      compute_digest(model_name, it->second.deployed_at, current_bytes);
  return digest == it->second.digest_hex ? VerificationStatus::kIntact
                                         : VerificationStatus::kTampered;
}

std::optional<std::vector<std::uint8_t>> ModelVault::restore(
    const std::string& model_name) const {
  const auto it = records_.find(model_name);
  if (it == records_.end()) return std::nullopt;
  return it->second.golden_bytes;
}

std::optional<VaultRecord> ModelVault::record(const std::string& model_name) const {
  const auto it = records_.find(model_name);
  if (it == records_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> ModelVault::model_names() const {
  std::vector<std::string> names;
  names.reserve(records_.size());
  for (const auto& [name, record] : records_) names.push_back(name);
  return names;
}

std::vector<std::uint8_t> ModelVault::serialize() const {
  util::ByteWriter w;
  w.write_string("VALT");
  w.write_u8(1);  // format version
  w.write_u64(records_.size());
  for (const auto& [name, record] : records_) {
    w.write_string(record.model_name);
    w.write_u64(record.deployed_at);
    w.write_string(record.digest_hex);
    w.write_bytes(record.golden_bytes);
  }
  return w.take();
}

ModelVault ModelVault::deserialize(std::span<const std::uint8_t> bytes) {
  util::ByteReader r(bytes);
  if (r.read_string() != "VALT")
    throw std::invalid_argument("ModelVault::deserialize: bad magic");
  if (r.read_u8() != 1)
    throw std::invalid_argument("ModelVault::deserialize: bad version");
  ModelVault vault;
  const std::uint64_t count = r.read_u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    VaultRecord record;
    record.model_name = r.read_string();
    record.deployed_at = r.read_u64();
    record.digest_hex = r.read_string();
    record.golden_bytes = r.read_bytes();
    // Self-check: the stored digest must match the golden copy, otherwise
    // the vault artifact itself has been tampered with.
    if (compute_digest(record.model_name, record.deployed_at,
                       record.golden_bytes) != record.digest_hex)
      throw std::invalid_argument(
          "ModelVault::deserialize: digest mismatch for model '" +
          record.model_name + "' (vault record tampered)");
    vault.records_[record.model_name] = std::move(record);
  }
  return vault;
}

}  // namespace drlhmd::integrity
