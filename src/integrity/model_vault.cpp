#include "integrity/model_vault.hpp"

#include <stdexcept>

namespace drlhmd::integrity {

std::string ModelVault::compute_digest(const std::string& model_name,
                                       std::uint64_t timestamp,
                                       std::span<const std::uint8_t> bytes) {
  Sha256 hasher;
  hasher.update(model_name);
  hasher.update("|");
  hasher.update(std::to_string(timestamp));
  hasher.update("|");
  hasher.update(bytes);
  return to_hex(hasher.finish());
}

std::string ModelVault::deploy(const std::string& model_name,
                               std::vector<std::uint8_t> model_bytes,
                               std::uint64_t timestamp) {
  if (model_name.empty())
    throw std::invalid_argument("ModelVault::deploy: empty model name");
  VaultRecord record;
  record.model_name = model_name;
  record.deployed_at = timestamp;
  record.digest_hex = compute_digest(model_name, timestamp, model_bytes);
  record.golden_bytes = std::move(model_bytes);
  const std::string digest = record.digest_hex;
  records_[model_name] = std::move(record);
  return digest;
}

VerificationStatus ModelVault::verify(
    const std::string& model_name,
    std::span<const std::uint8_t> current_bytes) const {
  const auto it = records_.find(model_name);
  if (it == records_.end()) return VerificationStatus::kUnknownModel;
  const std::string digest =
      compute_digest(model_name, it->second.deployed_at, current_bytes);
  return digest == it->second.digest_hex ? VerificationStatus::kIntact
                                         : VerificationStatus::kTampered;
}

std::optional<std::vector<std::uint8_t>> ModelVault::restore(
    const std::string& model_name) const {
  const auto it = records_.find(model_name);
  if (it == records_.end()) return std::nullopt;
  return it->second.golden_bytes;
}

std::optional<VaultRecord> ModelVault::record(const std::string& model_name) const {
  const auto it = records_.find(model_name);
  if (it == records_.end()) return std::nullopt;
  return it->second;
}

}  // namespace drlhmd::integrity
