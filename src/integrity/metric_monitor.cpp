#include "integrity/metric_monitor.hpp"

#include <cmath>
#include <stdexcept>

namespace drlhmd::integrity {

MetricMonitor::MetricMonitor(double tolerance) : tolerance_(tolerance) {
  if (tolerance <= 0.0)
    throw std::invalid_argument("MetricMonitor: tolerance must be > 0");
}

void MetricMonitor::record_baseline(const ml::Classifier& model,
                                    const ml::Dataset& reserved) {
  MetricBaseline baseline;
  baseline.model_name = model.name();
  baseline.metrics = model.evaluate(reserved);
  baselines_[baseline.model_name] = std::move(baseline);
}

DeviationReport MetricMonitor::assess(const ml::Classifier& model,
                                      const ml::Dataset& reserved) const {
  const auto it = baselines_.find(model.name());
  if (it == baselines_.end())
    throw std::logic_error("MetricMonitor::assess: no baseline for " + model.name());

  DeviationReport report;
  report.current = model.evaluate(reserved);
  const ml::MetricReport& base = it->second.metrics;

  const std::pair<const char*, std::pair<double, double>> checks[] = {
      {"accuracy", {base.accuracy, report.current.accuracy}},
      {"f1", {base.f1, report.current.f1}},
      {"tpr", {base.tpr, report.current.tpr}},
      {"fpr", {base.fpr, report.current.fpr}},
      {"tnr", {base.tnr, report.current.tnr}},
      {"fnr", {base.fnr, report.current.fnr}},
  };
  for (const auto& [name, values] : checks) {
    if (std::abs(values.first - values.second) > tolerance_) {
      report.deviated = true;
      report.violations.emplace_back(name);
    }
  }
  return report;
}

std::optional<MetricBaseline> MetricMonitor::baseline(
    const std::string& model_name) const {
  const auto it = baselines_.find(model_name);
  if (it == baselines_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::uint8_t> MetricMonitor::serialize() const {
  util::ByteWriter w;
  w.write_string("MMON");
  w.write_u8(1);  // format version
  w.write_f64(tolerance_);
  w.write_u64(baselines_.size());
  for (const auto& [name, baseline] : baselines_) {
    w.write_string(baseline.model_name);
    ml::write_metric_report(w, baseline.metrics);
  }
  return w.take();
}

MetricMonitor MetricMonitor::deserialize(std::span<const std::uint8_t> bytes) {
  util::ByteReader r(bytes);
  if (r.read_string() != "MMON")
    throw std::invalid_argument("MetricMonitor::deserialize: bad magic");
  if (r.read_u8() != 1)
    throw std::invalid_argument("MetricMonitor::deserialize: bad version");
  MetricMonitor monitor(r.read_f64());
  const std::uint64_t count = r.read_u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    MetricBaseline baseline;
    baseline.model_name = r.read_string();
    baseline.metrics = ml::read_metric_report(r);
    monitor.baselines_[baseline.model_name] = std::move(baseline);
  }
  return monitor;
}

}  // namespace drlhmd::integrity
