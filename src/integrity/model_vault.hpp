// ML-model integrity vault (paper Section 2.7).
//
// On deployment each model's serialized bytes are hashed (SHA-256 over the
// model identity + deployment timestamp + bytes) and the record stored.
// Periodic verification recomputes the hash and compares; a mismatch marks
// the model tampered, and restore() returns the vaulted good copy.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "integrity/sha256.hpp"

namespace drlhmd::integrity {

struct VaultRecord {
  std::string model_name;
  std::uint64_t deployed_at = 0;  // caller-supplied timestamp (seconds)
  std::string digest_hex;
  std::vector<std::uint8_t> golden_bytes;  // verified copy for restoration
};

enum class VerificationStatus : std::uint8_t { kIntact, kTampered, kUnknownModel };

class ModelVault {
 public:
  /// Register (or re-register) a deployed model. Returns the stored digest.
  std::string deploy(const std::string& model_name,
                     std::vector<std::uint8_t> model_bytes,
                     std::uint64_t timestamp);

  /// Compare current bytes against the stored record.
  VerificationStatus verify(const std::string& model_name,
                            std::span<const std::uint8_t> current_bytes) const;

  /// Golden copy for restoration after tampering; nullopt if unknown.
  std::optional<std::vector<std::uint8_t>> restore(const std::string& model_name) const;

  std::optional<VaultRecord> record(const std::string& model_name) const;
  std::size_t size() const { return records_.size(); }

  /// Digest rule: SHA-256("name|timestamp|" + bytes) — binding the model
  /// path-identity and deployment time into the hash, as the paper does.
  static std::string compute_digest(const std::string& model_name,
                                    std::uint64_t timestamp,
                                    std::span<const std::uint8_t> bytes);

  /// All deployed model names, sorted.
  std::vector<std::string> model_names() const;

  /// Persist every record (digests + golden copies).  On load, each
  /// record's digest is recomputed from its golden bytes and checked, so a
  /// vault artifact whose payload was rewritten is rejected immediately.
  std::vector<std::uint8_t> serialize() const;
  static ModelVault deserialize(std::span<const std::uint8_t> bytes);

 private:
  std::map<std::string, VaultRecord> records_;
};

}  // namespace drlhmd::integrity
