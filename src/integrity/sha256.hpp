// FIPS 180-4 SHA-256, implemented from scratch for the ML-model integrity
// vault (paper Section 2.7: periodic hashing of deployed models).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

namespace drlhmd::integrity {

using Sha256Digest = std::array<std::uint8_t, 32>;

/// Incremental hasher.
class Sha256 {
 public:
  Sha256();

  void update(std::span<const std::uint8_t> data);
  void update(std::string_view text);

  /// Finalize and return the digest. The hasher must not be reused after.
  Sha256Digest finish();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_bits_ = 0;
  bool finished_ = false;
};

/// One-shot convenience functions.
Sha256Digest sha256(std::span<const std::uint8_t> data);
Sha256Digest sha256(std::string_view text);

/// Lowercase hex rendering of a digest.
std::string to_hex(const Sha256Digest& digest);

}  // namespace drlhmd::integrity
