// Metric monitor (paper Section 2.7): tracks each deployed model's metrics
// on a reserved offline validation set and raises a deviation alarm when a
// fresh assessment drifts from the recorded baseline — an indicator of
// possible model modification.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ml/classifier.hpp"

namespace drlhmd::integrity {

struct MetricBaseline {
  std::string model_name;
  ml::MetricReport metrics;
};

struct DeviationReport {
  bool deviated = false;
  /// Per-metric absolute deltas that exceeded the tolerance.
  std::vector<std::string> violations;
  ml::MetricReport current;
};

class MetricMonitor {
 public:
  /// Absolute tolerance applied to every tracked metric.
  explicit MetricMonitor(double tolerance = 0.02);

  /// Record the baseline by evaluating the model on the reserved set.
  void record_baseline(const ml::Classifier& model, const ml::Dataset& reserved);

  /// Re-assess; compare ACC/F1/TPR/FPR/TNR/FNR against the baseline.
  DeviationReport assess(const ml::Classifier& model,
                         const ml::Dataset& reserved) const;

  std::optional<MetricBaseline> baseline(const std::string& model_name) const;
  std::size_t tracked_models() const { return baselines_.size(); }
  double tolerance() const { return tolerance_; }

  /// Persist the tolerance and every recorded baseline.
  std::vector<std::uint8_t> serialize() const;
  static MetricMonitor deserialize(std::span<const std::uint8_t> bytes);

 private:
  double tolerance_;
  std::map<std::string, MetricBaseline> baselines_;
};

}  // namespace drlhmd::integrity
